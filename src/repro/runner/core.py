"""Process-pool execution of independent experiment tasks.

The experiment grids (Table I / Table II / Figure 3 / the piecewise
sweep) are embarrassingly parallel: hundreds of independent
``(case, mode, method, backend)`` synthesis+validation tasks. This
module fans them out over a small pool of shared-nothing worker
processes while keeping the *observable* behaviour identical to a
serial run:

* **Deterministic ordering** — results are keyed by submission index
  and returned in submission order, regardless of completion order, so
  parallel output renders byte-identically to serial (modulo measured
  wall times, which are stochastic either way).
* **Per-task deadlines** — a task that exceeds ``task_deadline``
  seconds has its worker terminated and its :meth:`Task.on_timeout`
  result recorded; a hung ``eq-smt`` call no longer serializes the
  whole sweep. (Deadlines are only enforceable in pooled mode — an
  in-process task cannot be killed.)
* **Graceful degradation** — ``jobs=1``, an unavailable
  ``multiprocessing`` context, or a failed worker spawn all fall back
  to plain in-process execution; a worker that dies mid-task without
  reporting gets its task re-run in-process.
* **Shared-nothing protocol** — tasks are small picklable specs
  (:mod:`repro.runner.tasks`) that resolve benchmark cases *by name*
  and rebuild matrices locally in the worker. Workers are persistent,
  so per-process caches (the balanced-truncation ladder) are built at
  most once per worker — and, under the preferred ``fork`` start
  method, inherited from the parent for free.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from multiprocessing.connection import wait as _wait_ready

from .timing import TaskTiming, TimingCollector

__all__ = ["Task", "run_tasks", "resolve_jobs"]

#: Seconds between scheduler polls while waiting on busy workers.
_POLL_INTERVAL = 0.05


class Task:
    """Base class for runner tasks.

    Subclasses must be picklable (defined at module level, plain
    attributes) and implement :meth:`run`. The failure hooks translate
    runner-level events into domain results so a sweep always yields a
    full, ordered result list.
    """

    def run(self):
        """Execute the task and return its result (runs in a worker)."""
        raise NotImplementedError

    def key(self) -> dict | None:
        """Identifying fields for timing records, e.g. ``{"case": ...}``."""
        return None

    def on_timeout(self, elapsed: float):
        """Result recorded when the runner kills the task at its deadline."""
        return None

    def on_error(self, message: str):
        """Result recorded when the task raises (or its worker crashes)."""
        return None

    def timing_detail(self, result) -> dict:
        """Extra per-task timing fields extracted from a successful result."""
        return {}


def resolve_jobs(jobs: int | None) -> int:
    """``None`` means all CPU cores; anything below 1 is clamped to 1."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def run_tasks(
    tasks,
    jobs: int | None = 1,
    task_deadline: float | None = None,
    collect: TimingCollector | None = None,
) -> list:
    """Run every task and return their results in submission order.

    ``jobs=None`` uses all CPU cores, ``jobs=1`` runs in-process (no
    pool, no deadline enforcement). ``collect`` receives one
    :class:`~repro.runner.timing.TaskTiming` per task.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    jobs = min(resolve_jobs(jobs), len(tasks))
    if jobs == 1:
        return [_run_local(task, collect) for task in tasks]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork: spawn still works,
        context = multiprocessing.get_context()  # caches warm per worker
    return _run_pooled(tasks, jobs, context, task_deadline, collect)


# ----------------------------------------------------------------------
# In-process execution (the jobs=1 path and the fallback of last resort)
# ----------------------------------------------------------------------

def _run_local(task: Task, collect, status: str = "ok"):
    start = time.perf_counter()
    try:
        result = task.run()
    except Exception as exc:
        result = task.on_error(f"{type(exc).__name__}: {exc}")
        status = "error"
    _record(collect, task, status, time.perf_counter() - start, "local", result)
    return result


def _record(collect, task, status, wall, worker, result):
    if collect is None:
        return
    detail: dict = {}
    if status in ("ok", "fallback"):
        try:
            detail = task.timing_detail(result) or {}
        except Exception:
            detail = {}
    collect.record(
        TaskTiming(
            key=task.key(), status=status, wall_s=wall,
            worker=str(worker), detail=detail,
        )
    )


# ----------------------------------------------------------------------
# Pooled execution
# ----------------------------------------------------------------------

def _worker_loop(connection):
    """Persistent worker: receive ``(index, task)``, send back
    ``(index, status, payload)``; ``None`` shuts the worker down."""
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, task = message
        try:
            payload = (index, "ok", task.run())
        except BaseException as exc:  # report, don't kill the worker
            payload = (index, "error", f"{type(exc).__name__}: {exc}")
        try:
            connection.send(payload)
        except (BrokenPipeError, OSError):
            break
    try:
        connection.close()
    except OSError:
        pass


class _Worker:
    __slots__ = ("process", "connection", "index", "task", "started")

    def __init__(self, process, connection):
        self.process = process
        self.connection = connection
        self.index = None  # submission index of the in-flight task
        self.task = None
        self.started = 0.0

    @property
    def busy(self) -> bool:
        return self.index is not None

    def clear(self) -> None:
        self.index = self.task = None

    def stop(self) -> None:
        try:
            if self.process.is_alive():
                self.connection.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        try:
            self.connection.close()
        except OSError:
            pass


def _spawn_worker(context) -> _Worker:
    parent_end, child_end = context.Pipe(duplex=True)
    process = context.Process(
        target=_worker_loop, args=(child_end,), daemon=True
    )
    process.start()
    child_end.close()
    return _Worker(process, parent_end)


def _run_pooled(tasks, jobs, context, task_deadline, collect):
    results = [None] * len(tasks)
    done = [False] * len(tasks)
    pending = deque(enumerate(tasks))
    workers: list[_Worker] = []

    def finish(index, task, status, wall, worker_label, result):
        results[index] = result
        done[index] = True
        _record(collect, task, status, wall, worker_label, result)

    try:
        for _ in range(jobs):
            try:
                workers.append(_spawn_worker(context))
            except (OSError, ValueError):
                break
        while pending or any(w.busy for w in workers):
            if not workers:
                # Pool unavailable (or every worker lost): degrade to
                # in-process execution for whatever remains.
                while pending:
                    index, task = pending.popleft()
                    results[index] = _run_local(task, collect)
                    done[index] = True
                break
            for worker in workers:
                if not worker.busy and pending:
                    index, task = pending.popleft()
                    try:
                        worker.connection.send((index, task))
                    except Exception:
                        # Unpicklable task or broken pipe: run it here.
                        results[index] = _run_local(task, collect)
                        done[index] = True
                        continue
                    worker.index, worker.task = index, task
                    worker.started = time.monotonic()
            busy = [w for w in workers if w.busy]
            if not busy:
                continue
            ready = _wait_ready(
                [w.connection for w in busy], timeout=_POLL_INTERVAL
            )
            now = time.monotonic()
            for worker in busy:
                if worker.connection in ready:
                    if not _collect_reply(worker, finish, now):
                        workers = _replace(workers, worker, context, pending)
                elif not worker.process.is_alive():
                    # Died without reporting (segfault, os._exit): give
                    # any in-flight reply a last chance, then fall back.
                    if not _collect_reply(worker, finish, now):
                        finish(
                            worker.index, worker.task, "fallback",
                            now - worker.started, "local",
                            _run_local(worker.task, None),
                        )
                        worker.clear()
                    workers = _replace(workers, worker, context, pending)
                elif (
                    task_deadline is not None
                    and now - worker.started > task_deadline
                ):
                    elapsed = now - worker.started
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
                    finish(
                        worker.index, worker.task, "timeout", elapsed,
                        worker.process.pid,
                        worker.task.on_timeout(elapsed),
                    )
                    worker.clear()
                    workers = _replace(workers, worker, context, pending)
    finally:
        for worker in workers:
            worker.stop()
    # Anything not yet finished (shouldn't happen, but never return
    # holes): run it in-process.
    for index, task in enumerate(tasks):
        if not done[index]:
            results[index] = _run_local(task, collect)
    return results


def _collect_reply(worker, finish, now) -> bool:
    """Receive one reply from ``worker`` if available; ``True`` on success."""
    try:
        if not worker.connection.poll():
            return False
        index, status, payload = worker.connection.recv()
    except (EOFError, OSError):
        return False
    task = worker.task
    elapsed = now - worker.started
    if status == "ok":
        finish(index, task, "ok", elapsed, worker.process.pid, payload)
    else:
        finish(
            index, task, "error", elapsed, worker.process.pid,
            task.on_error(payload),
        )
    worker.clear()
    return True


def _replace(workers, dead, context, pending):
    """Swap a stopped worker for a fresh one (only while work remains)."""
    remaining = [w for w in workers if w is not dead]
    if dead.process.is_alive():
        return workers  # still healthy — keep it
    dead.stop()
    if pending:
        try:
            remaining.append(_spawn_worker(context))
        except (OSError, ValueError):
            pass
    return remaining
