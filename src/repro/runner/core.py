"""Process-pool execution of independent experiment tasks.

The experiment grids (Table I / Table II / Figure 3 / the piecewise
sweep) are embarrassingly parallel: hundreds of independent
``(case, mode, method, backend)`` synthesis+validation tasks. This
module fans them out over a small pool of shared-nothing worker
processes while keeping the *observable* behaviour identical to a
serial run:

* **Deterministic ordering** — results are keyed by submission index
  and returned in submission order, regardless of completion order, so
  parallel output renders byte-identically to serial (modulo measured
  wall times, which are stochastic either way).
* **Per-task deadlines** — a task that exceeds ``task_deadline``
  seconds has its worker terminated and (once retries are exhausted)
  its :meth:`Task.on_timeout` result recorded; a hung ``eq-smt`` call
  no longer serializes the whole sweep. (Deadlines are only enforceable
  in pooled mode — an in-process task cannot be killed.)
* **Retries with backoff** — *transient* failures (a worker that died
  without reporting, a deadline kill, a broken pipe, or a task raising
  :class:`TransientTaskError`) are retried up to
  :attr:`RetryPolicy.retries` times with exponential backoff plus
  deterministic jitter (hashed from the submission index and attempt
  number, so reruns back off identically). *Permanent* failures —
  ordinary domain exceptions out of :meth:`Task.run` — are recorded
  once, with a structured ``{"exc", "transient"}`` error record, and
  never retried. Attempt counts flow into the timing artifact and the
  :class:`CampaignStats` summary.
* **Durability** — pass ``journal=`` (a
  :class:`repro.runner.journal.Journal`) and every completed outcome is
  fsync'd to an append-only JSONL file keyed by task fingerprint;
  already-journaled tasks are *replayed* without executing, which is
  how ``--resume`` turns a killed campaign into a gap re-run.
* **Graceful degradation** — ``jobs=1``, an unavailable
  ``multiprocessing`` context, or a failed worker spawn all fall back
  to plain in-process execution; a worker that dies mid-task with no
  retries left gets its task re-run in-process.
* **Shared-nothing protocol** — tasks are small picklable specs
  (:mod:`repro.runner.tasks`) that resolve benchmark cases *by name*
  and rebuild matrices locally in the worker. Workers are persistent,
  so per-process caches (the balanced-truncation ladder) are built at
  most once per worker — and, under the preferred ``fork`` start
  method, inherited from the parent for free.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_ready

from .timing import TaskTiming, TimingCollector

__all__ = [
    "Task",
    "TransientTaskError",
    "RetryPolicy",
    "CampaignStats",
    "run_tasks",
    "resolve_jobs",
]

#: Seconds between scheduler polls while waiting on busy workers.
_POLL_INTERVAL = 0.05


class TransientTaskError(RuntimeError):
    """A task failure worth retrying (flaky backend, lost resource).

    Raise (or subclass) this from :meth:`Task.run` to mark the failure
    transient: the runner re-attempts the task under the active
    :class:`RetryPolicy` instead of recording the error immediately.
    Any other exception is classified *permanent* and recorded once.
    """


class Task:
    """Base class for runner tasks.

    Subclasses must be picklable (defined at module level, plain
    attributes) and implement :meth:`run`. The failure hooks translate
    runner-level events into domain results so a sweep always yields a
    full, ordered result list.
    """

    def run(self):
        """Execute the task and return its result (runs in a worker)."""
        raise NotImplementedError

    def key(self) -> dict | None:
        """Identifying fields for timing records, e.g. ``{"case": ...}``."""
        return None

    def fingerprint_spec(self) -> tuple[str, dict]:
        """``(kind, fields)`` identifying this task for the journal.

        The default — class name plus every public instance attribute —
        is correct for plain task specs; override to drop volatile
        fields (e.g. measured wall times riding along inside a
        candidate) that would spuriously change the fingerprint between
        runs. Underscore-prefixed attributes are always excluded: they
        hold runtime bookkeeping (the memoized ``_fingerprint`` digest
        itself, lazily attached caches) that must not feed back into
        the content address.
        """
        fields = {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }
        return type(self).__name__, fields

    def on_attempt(self, attempt: int) -> None:
        """Called with the 1-based attempt number before each dispatch."""

    def corrupt_journal_record(self) -> bool:
        """Chaos hook: ``True`` makes the runner tear this task's journal
        record (see :mod:`repro.runner.chaos`)."""
        return False

    def on_timeout(self, elapsed: float):
        """Result recorded when the runner kills the task at its deadline."""
        return None

    def on_error(self, message: str):
        """Result recorded when the task raises (or its worker crashes)."""
        return None

    def timing_detail(self, result) -> dict:
        """Extra per-task timing fields extracted from a successful result."""
        return {}


@dataclass(frozen=True)
class RetryPolicy:
    """How transient failures are retried.

    ``retries`` is the number of *extra* attempts after the first;
    backoff before attempt ``k+1`` is ``backoff * 2**(k-1)`` capped at
    ``max_backoff``, scaled by ``1 + jitter`` where the jitter in
    ``[0, 1)`` is hashed deterministically from ``(token, attempt)`` —
    identical reruns back off identically, but neighbouring tasks
    desynchronize.
    """

    retries: int = 0
    backoff: float = 0.05
    max_backoff: float = 2.0

    def delay(self, attempt: int, token) -> float:
        """Backoff after failed attempt number ``attempt`` (1-based)."""
        base = min(self.backoff * (2 ** max(0, attempt - 1)), self.max_backoff)
        digest = hashlib.sha256(f"{token}:{attempt}".encode()).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + jitter)


def _resolve_retry(retry) -> RetryPolicy:
    if retry is None:
        return RetryPolicy()
    if isinstance(retry, RetryPolicy):
        return retry
    return RetryPolicy(retries=int(retry))


@dataclass
class CampaignStats:
    """Per-campaign counters for the summary line (and the CLI).

    ``executed`` counts tasks that actually ran this run; ``replayed``
    counts journal hits; ``retried_tasks``/``retry_attempts`` track
    *policy* retries — a task that raised a transient error and was
    re-attempted. ``requeued_tasks``/``requeue_attempts`` count tasks
    re-dispatched because the *infrastructure* failed under them — a
    worker death, a deadline kill, or (in sharded campaigns) a whole
    shard declared dead — which used to be folded into the retry
    counters and is now reported distinctly. ``stolen_tasks`` counts
    tasks work-stolen from a busy shard's backlog onto an idle shard.
    ``degraded`` counts tasks whose result records a backend/validator
    fallback; ``journal_errors`` counts outcomes that could not be
    journaled (the campaign continues regardless).
    """

    total: int = 0
    executed: int = 0
    replayed: int = 0
    retried_tasks: int = 0
    retry_attempts: int = 0
    requeued_tasks: int = 0
    requeue_attempts: int = 0
    stolen_tasks: int = 0
    degraded: int = 0
    errors: int = 0
    timeouts: int = 0
    journal_errors: int = 0

    def summary(self) -> str:
        parts = [
            f"{self.total} tasks",
            f"{self.executed} run",
            f"{self.replayed} replayed",
            f"{self.retried_tasks} retried (+{self.retry_attempts} attempts)",
            f"{self.degraded} degraded",
            f"{self.errors} errors",
        ]
        if self.requeued_tasks:
            parts.insert(
                4,
                f"{self.requeued_tasks} requeued "
                f"(+{self.requeue_attempts} attempts)",
            )
        if self.stolen_tasks:
            parts.append(f"{self.stolen_tasks} stolen")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.journal_errors:
            parts.append(f"{self.journal_errors} journal write failures")
        return "campaign: " + ", ".join(parts)

    def counters(self) -> dict:
        """Plain-dict snapshot for the timing artifact."""
        return {
            "total": self.total,
            "executed": self.executed,
            "replayed": self.replayed,
            "retried_tasks": self.retried_tasks,
            "retry_attempts": self.retry_attempts,
            "requeued_tasks": self.requeued_tasks,
            "requeue_attempts": self.requeue_attempts,
            "stolen_tasks": self.stolen_tasks,
            "degraded": self.degraded,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "journal_errors": self.journal_errors,
        }


def resolve_jobs(jobs: int | None) -> int:
    """``None`` means every *available* CPU; below 1 is clamped to 1.

    Precedence: an explicit ``jobs`` argument (the ``--jobs`` CLI flag)
    wins; with ``jobs=None`` a ``REPRO_JOBS`` environment variable, if
    set to a parseable integer, sizes the pool instead (malformed
    values are ignored); otherwise every available CPU is used. The
    env override lets the service layer and the experiment drivers
    size their pools consistently without plumbing a flag through
    every entry point.

    Prefers ``os.sched_getaffinity`` over ``os.cpu_count`` so a
    container or cgroup that pins the process to a CPU subset (typical
    CI) gets a pool sized to what it may actually use, not to the host.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env is not None:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None:
        try:
            jobs = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):  # non-Linux platforms
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def run_tasks(
    tasks,
    jobs: int | None = 1,
    task_deadline: float | None = None,
    collect: TimingCollector | None = None,
    journal=None,
    retry: RetryPolicy | int | None = None,
    stats: CampaignStats | None = None,
) -> list:
    """Run every task and return their results in submission order.

    ``jobs=None`` uses all available CPUs, ``jobs=1`` runs in-process
    (no pool, no deadline enforcement). ``collect`` receives one
    :class:`~repro.runner.timing.TaskTiming` per task. ``journal`` (a
    :class:`repro.runner.journal.Journal`) replays already-recorded
    tasks and persists fresh outcomes; ``retry`` (a
    :class:`RetryPolicy`, or an int shorthand for the retry count)
    re-attempts transient failures; ``stats`` accumulates the campaign
    summary counters.
    """
    tasks = list(tasks)
    if stats is None:
        stats = CampaignStats()
    stats.total += len(tasks)
    if not tasks:
        return []
    run = _Run(tasks, collect, journal, _resolve_retry(retry), stats)
    todo = run.replay()
    if todo:
        jobs = min(resolve_jobs(jobs), len(todo))
        if jobs == 1:
            for index, task in todo:
                _run_local(index, task, run)
        else:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # platforms without fork: spawn still works,
                context = multiprocessing.get_context()  # caches warm/worker
            _run_pooled(todo, jobs, context, task_deadline, run)
    # Anything not yet finished (shouldn't happen, but never return
    # holes): run it in-process.
    for index, task in enumerate(tasks):
        if not run.done[index]:
            _run_local(index, task, run)
    return run.results


class _Run:
    """Bookkeeping shared by the local and pooled execution paths."""

    def __init__(self, tasks, collect, journal, policy, stats):
        self.tasks = tasks
        self.results = [None] * len(tasks)
        self.done = [False] * len(tasks)
        self.collect = collect
        self.journal = journal
        self.policy = policy
        self.stats = stats
        self.fingerprints: list[str | None] = [None] * len(tasks)
        self.attempts: dict[int, int] = {}
        self.requeues: dict[int, int] = {}
        self.walls: dict[int, float] = {}

    # -- journal replay ------------------------------------------------

    def replay(self) -> list[tuple[int, "Task"]]:
        """Mark journal hits done; return the (index, task) gaps to run."""
        if self.journal is None:
            return list(enumerate(self.tasks))
        todo = []
        for index, task in enumerate(self.tasks):
            fingerprint = self.journal.fingerprint(task)
            self.fingerprints[index] = fingerprint
            entry = self.journal.get(fingerprint)
            if entry is None:
                todo.append((index, task))
                continue
            self.results[index] = entry.result
            self.done[index] = True
            self.stats.replayed += 1
            self._emit_timing(
                task, "replayed", 0.0, "journal", entry.result,
                attempts=0, error=entry.error,
            )
        return todo

    # -- attempt accounting --------------------------------------------

    def next_attempt(self, index: int) -> int:
        attempt = self.attempts.get(index, 0) + 1
        self.attempts[index] = attempt
        return attempt

    def may_retry(self, index: int) -> bool:
        """Is another attempt allowed after the current one failed?"""
        return self.attempts.get(index, 1) <= self.policy.retries

    def note_requeue(self, index: int) -> None:
        """Classify the task's next attempt as an infrastructure
        requeue (worker death, deadline kill) rather than a policy
        retry, so the two are reported distinctly."""
        self.requeues[index] = self.requeues.get(index, 0) + 1

    def spend(self, index: int, wall: float) -> None:
        self.walls[index] = self.walls.get(index, 0.0) + wall

    # -- completion ----------------------------------------------------

    def finish(self, index, task, status, worker, result, error=None):
        """Record a final outcome: result slot, stats, timing, journal."""
        self.results[index] = result
        self.done[index] = True
        attempts = self.attempts.get(index, 1)
        self.stats.executed += 1
        requeues = min(self.requeues.get(index, 0), max(0, attempts - 1))
        retries = max(0, attempts - 1 - requeues)
        if retries:
            self.stats.retried_tasks += 1
            self.stats.retry_attempts += retries
        if requeues:
            self.stats.requeued_tasks += 1
            self.stats.requeue_attempts += requeues
        if status == "error":
            self.stats.errors += 1
        elif status == "timeout":
            self.stats.timeouts += 1
        detail = self._emit_timing(
            task, status, self.walls.get(index, 0.0), worker, result,
            attempts=attempts, error=error, requeues=requeues,
        )
        if detail.get("degraded"):
            self.stats.degraded += 1
        if self.journal is not None:
            self._journal_write(index, task, status, result, attempts, error)

    def _emit_timing(
        self, task, status, wall, worker, result, attempts, error,
        requeues=0,
    ) -> dict:
        detail: dict = {}
        if status in ("ok", "fallback", "replayed"):
            try:
                detail = task.timing_detail(result) or {}
            except Exception:
                detail = {}
        if self.collect is not None:
            self.collect.record(
                TaskTiming(
                    key=task.key(), status=status, wall_s=wall,
                    worker=str(worker), detail=detail,
                    attempts=attempts, error=error, requeues=requeues,
                )
            )
        return detail

    def _journal_write(self, index, task, status, result, attempts, error):
        fingerprint = self.fingerprints[index]
        if fingerprint is None:
            fingerprint = self.journal.fingerprint(task)
            self.fingerprints[index] = fingerprint
        kind = type(task).__name__
        try:
            if task.corrupt_journal_record():
                self.journal.record_corrupt(fingerprint, kind)
            else:
                self.journal.record(
                    fingerprint, kind, status, result,
                    attempts=attempts, error=error,
                )
        except Exception:
            # A journaling failure must not take down the campaign; the
            # task simply re-runs on the next resume.
            self.stats.journal_errors += 1


def _exc_message(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


# ----------------------------------------------------------------------
# In-process execution (the jobs=1 path and the fallback of last resort)
# ----------------------------------------------------------------------

def _run_local(index, task, run: _Run, status: str = "ok"):
    """Run one task in-process, honouring the retry policy."""
    while True:
        attempt = run.next_attempt(index)
        try:
            task.on_attempt(attempt)
        except Exception:
            pass
        start = time.perf_counter()
        try:
            result = task.run()
            error = None
        except TransientTaskError as exc:
            run.spend(index, time.perf_counter() - start)
            if run.may_retry(index):
                time.sleep(run.policy.delay(attempt, index))
                continue
            result = task.on_error(_exc_message(exc))
            status = "error"
            error = {"exc": _exc_message(exc), "transient": True}
        except Exception as exc:
            run.spend(index, time.perf_counter() - start)
            result = task.on_error(_exc_message(exc))
            status = "error"
            error = {"exc": _exc_message(exc), "transient": False}
        else:
            run.spend(index, time.perf_counter() - start)
        run.finish(index, task, status, "local", result, error)
        return result


def _run_local_once(index, task, run: _Run, status: str):
    """Single local attempt (no further retries) for last-resort paths."""
    start = time.perf_counter()
    error = None
    try:
        result = task.run()
    except Exception as exc:
        result = task.on_error(_exc_message(exc))
        status = "error"
        error = {
            "exc": _exc_message(exc),
            "transient": isinstance(exc, TransientTaskError),
        }
    run.spend(index, time.perf_counter() - start)
    run.finish(index, task, status, "local", result, error)


# ----------------------------------------------------------------------
# Pooled execution
# ----------------------------------------------------------------------

def _worker_loop(connection):
    """Persistent worker: receive ``(index, task)``, send back
    ``(index, status, payload)``; ``None`` shuts the worker down. Errors
    are reported structurally (message + transient classification), not
    by killing the worker."""
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, task = message
        try:
            payload = (index, "ok", task.run())
        except BaseException as exc:  # report, don't kill the worker
            payload = (
                index,
                "error",
                {
                    "exc": _exc_message(exc),
                    "transient": isinstance(exc, TransientTaskError),
                },
            )
        try:
            connection.send(payload)
        except (BrokenPipeError, OSError):
            break
        except Exception as exc:  # unpicklable result: report, carry on
            try:
                connection.send(
                    (
                        index,
                        "error",
                        {"exc": _exc_message(exc), "transient": False},
                    )
                )
            except Exception:
                break
    try:
        connection.close()
    except OSError:
        pass


class _Worker:
    __slots__ = ("process", "connection", "index", "task", "started")

    def __init__(self, process, connection):
        self.process = process
        self.connection = connection
        self.index = None  # submission index of the in-flight task
        self.task = None
        self.started = 0.0

    @property
    def busy(self) -> bool:
        return self.index is not None

    def clear(self) -> None:
        self.index = self.task = None

    def stop(self) -> None:
        try:
            if self.process.is_alive():
                self.connection.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        try:
            self.connection.close()
        except OSError:
            pass


def _spawn_worker(context) -> _Worker:
    parent_end, child_end = context.Pipe(duplex=True)
    process = context.Process(
        target=_worker_loop, args=(child_end,), daemon=True
    )
    process.start()
    child_end.close()
    return _Worker(process, parent_end)


def _run_pooled(todo, jobs, context, task_deadline, run: _Run):
    pending = deque(todo)
    delayed: list[tuple[float, int, Task]] = []  # (ready_at, index, task)
    workers: list[_Worker] = []

    def requeue(index, task):
        """Schedule a retry after its deterministic backoff."""
        ready = time.monotonic() + run.policy.delay(
            run.attempts.get(index, 1), index
        )
        delayed.append((ready, index, task))

    def work_remains() -> bool:
        return bool(pending or delayed)

    try:
        for _ in range(jobs):
            try:
                workers.append(_spawn_worker(context))
            except (OSError, ValueError):
                break
        while pending or delayed or any(w.busy for w in workers):
            now = time.monotonic()
            if delayed:
                due = sorted(d for d in delayed if d[0] <= now)
                if due:
                    delayed = [d for d in delayed if d[0] > now]
                    for _ready, index, task in due:
                        pending.append((index, task))
            if not workers:
                # Pool unavailable (or every worker lost): degrade to
                # in-process execution for whatever remains.
                for _ready, index, task in sorted(delayed):
                    pending.append((index, task))
                delayed = []
                while pending:
                    index, task = pending.popleft()
                    _run_local(index, task, run)
                break
            for worker in workers:
                if not worker.busy and pending:
                    index, task = pending.popleft()
                    attempt = run.next_attempt(index)
                    try:
                        task.on_attempt(attempt)
                    except Exception:
                        pass
                    try:
                        worker.connection.send((index, task))
                    except Exception:
                        # Unpicklable task or broken pipe: run it here.
                        _run_local_once(index, task, run, status="ok")
                        continue
                    worker.index, worker.task = index, task
                    worker.started = time.monotonic()
            busy = [w for w in workers if w.busy]
            if not busy:
                if not pending and delayed:
                    time.sleep(
                        min(
                            _POLL_INTERVAL,
                            max(0.0, min(d[0] for d in delayed) - now),
                        )
                    )
                continue
            ready = _wait_ready(
                [w.connection for w in busy], timeout=_POLL_INTERVAL
            )
            now = time.monotonic()
            for worker in busy:
                if worker.connection in ready:
                    if not _collect_reply(worker, run, now, requeue):
                        workers = _replace(
                            workers, worker, context, work_remains()
                        )
                elif not worker.process.is_alive():
                    # Died without reporting (segfault, os._exit): give
                    # any in-flight reply a last chance, then classify
                    # the death as transient.
                    if not _collect_reply(worker, run, now, requeue):
                        index, task = worker.index, worker.task
                        run.spend(index, now - worker.started)
                        worker.clear()
                        if run.may_retry(index):
                            run.note_requeue(index)
                            requeue(index, task)
                        else:
                            _run_local_once(index, task, run, "fallback")
                    workers = _replace(
                        workers, worker, context, work_remains()
                    )
                elif (
                    task_deadline is not None
                    and now - worker.started > task_deadline
                ):
                    elapsed = now - worker.started
                    index, task = worker.index, worker.task
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
                    run.spend(index, elapsed)
                    worker.clear()
                    if run.may_retry(index):
                        run.note_requeue(index)
                        requeue(index, task)
                    else:
                        run.finish(
                            index, task, "timeout", worker.process.pid,
                            task.on_timeout(elapsed),
                            error={
                                "exc": (
                                    f"deadline exceeded ({elapsed:.3g}s"
                                    f" > {task_deadline:.3g}s)"
                                ),
                                "transient": True,
                            },
                        )
                    workers = _replace(
                        workers, worker, context, work_remains()
                    )
    finally:
        for worker in workers:
            worker.stop()


def _collect_reply(worker, run: _Run, now, requeue) -> bool:
    """Receive one reply from ``worker`` if available; ``True`` on success."""
    try:
        if not worker.connection.poll():
            return False
        index, status, payload = worker.connection.recv()
    except (EOFError, OSError):
        return False
    task = worker.task
    run.spend(index, now - worker.started)
    worker.clear()
    if status == "ok":
        run.finish(index, task, "ok", worker.process.pid, payload)
        return True
    if payload.get("transient") and run.may_retry(index):
        requeue(index, task)
        return True
    run.finish(
        index, task, "error", worker.process.pid,
        task.on_error(payload.get("exc", "task error")), error=payload,
    )
    return True


def _replace(workers, dead, context, work_remains):
    """Swap a stopped worker for a fresh one (only while work remains)."""
    remaining = [w for w in workers if w is not dead]
    if dead.process.is_alive():
        return workers  # still healthy — keep it
    dead.stop()
    if work_remains:
        try:
            remaining.append(_spawn_worker(context))
        except (OSError, ValueError):
            pass
    return remaining
