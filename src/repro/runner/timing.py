"""Per-task timing instrumentation and the ``BENCH_experiments.json``
performance-trajectory artifact.

Every runner execution can feed a :class:`TimingCollector`; the CLI
(and the scaling micro-benchmark) then merges one entry per experiment
into a machine-readable JSON file, so per-task synthesis/validation
wall times are tracked across PRs.

Schema (``repro-bench/2``; ``/1`` files are migrated in place — the
``experiments`` section is carried over unchanged)::

    {
      "schema": "repro-bench/2",
      "experiments": {
        "<experiment>": {
          "jobs": 4,
          "quick": true,
          "total_wall_s": 12.34,        # whole-sweep wall clock
          "task_wall_s": 45.6,          # sum of per-task wall clocks
          "tasks": [
            {
              "case": "size3i", "mode": 0,
              "method": "eq-num", "backend": null,   # the task key
              "status": "ok",           # ok|error|timeout|fallback|replayed
              "wall_s": 0.0123,         # wall clock, summed over attempts
              "worker": "12345",        # worker pid, "local", or "journal"
              "attempts": 1,            # attempts made (0 = journal replay)
              "error": {"exc": "...",   # structured failure record, only
                        "transient": false},  # when the task failed
              "synth_s": 0.0004,        # driver-specific detail fields
              "validate_s": 0.0119,
              "degraded": [...]         # fallback provenance, when any
            }, ...
          ]
        }, ...
      },
      "resilience": {                   # journal/resume overheads
        ...                             # (benchmarks/test_resilience.py)
      },
      "kernels": {                      # exact-kernel micro-benchmarks
        "sizes": {                      # closed-loop matrix dimension
          "18": {
            "fraction_det_s": 0.0447,   # per-backend wall times
            "int_det_s": 0.0044,
            "modular_det_s": 0.0100,
            "fraction_minors_s": 0.0256,
            "int_minors_s": 0.0032,
            "modular_minors_s": 0.0123
          }, ...
        },
        "cache": {"hits": 416, "misses": 99, ...}   # kernel_cache_info()
      }
    }

Task keys are experiment-shaped: ``(case, mode, method, backend)`` for
Table I / Table II / Figure 3 (Figure 3 adds ``validator``),
``(case, encoding)`` for the piecewise sweep. The ``kernels`` section
is written by ``benchmarks/test_exact_kernels.py`` via
:func:`write_kernels_bench` and preserved by :func:`write_bench` (and
vice versa).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

__all__ = [
    "TaskTiming",
    "TimingCollector",
    "write_bench",
    "write_section",
    "write_kernels_bench",
    "BENCH_SCHEMA",
]

BENCH_SCHEMA = "repro-bench/2"
#: Prior schema whose ``experiments`` section is still understood and
#: migrated forward instead of being discarded.
_BENCH_SCHEMA_V1 = "repro-bench/1"


@dataclass
class TaskTiming:
    """Wall-clock record of one runner task.

    ``wall_s`` accumulates across retry attempts; ``attempts`` is the
    number of attempts actually made (0 for a journal replay). ``error``
    is the runner's structured failure record
    (``{"exc": message, "transient": bool}``) when the task ultimately
    failed, ``None`` otherwise.
    """

    key: dict | None
    status: str  # "ok" | "error" | "timeout" | "fallback" | "replayed"
    wall_s: float
    worker: str  # worker pid, "local", "journal", or "shard<K>:<pid>"
    detail: dict = field(default_factory=dict)
    attempts: int = 1
    error: dict | None = None
    #: Attempts caused by infrastructure failure (worker/shard death,
    #: deadline kill) rather than a policy retry; see
    #: :class:`repro.runner.CampaignStats`.
    requeues: int = 0

    def as_entry(self) -> dict:
        entry = dict(self.key or {})
        entry["status"] = self.status
        entry["wall_s"] = self.wall_s
        entry["worker"] = self.worker
        entry["attempts"] = self.attempts
        if self.requeues:
            entry["requeues"] = self.requeues
        if self.error is not None:
            entry["error"] = dict(self.error)
        entry.update(self.detail)
        return entry


class TimingCollector:
    """Accumulates :class:`TaskTiming` records across runner calls."""

    def __init__(self) -> None:
        self.timings: list[TaskTiming] = []

    def record(self, timing: TaskTiming) -> None:
        self.timings.append(timing)

    def task_wall_s(self) -> float:
        """Sum of per-task wall clocks (CPU-ish cost, not elapsed time)."""
        return sum(t.wall_s for t in self.timings)

    def entries(self) -> list[dict]:
        return [t.as_entry() for t in self.timings]


def write_bench(
    path: str | pathlib.Path,
    experiment: str,
    collector: TimingCollector,
    jobs: int,
    quick: bool,
    total_wall_s: float,
    stats=None,
    shards: int | None = None,
) -> dict:
    """Merge one experiment's timings into the bench artifact at ``path``.

    Existing entries for *other* experiments are preserved — as is the
    ``kernels`` section — so a full ``python -m repro.experiments all``
    accumulates every sweep into a single file. ``stats`` (a
    :class:`repro.runner.CampaignStats`) adds the campaign counters —
    replays, retries, requeues, steals — as a ``"campaign"`` sub-dict;
    ``shards`` records the shard count of a sharded campaign. Returns
    the written document.
    """
    path = pathlib.Path(path)
    data = _load_bench(path)
    entry = {
        "jobs": jobs,
        "quick": quick,
        "total_wall_s": total_wall_s,
        "task_wall_s": collector.task_wall_s(),
        "tasks": collector.entries(),
    }
    if shards is not None:
        entry["shards"] = shards
    if stats is not None:
        entry["campaign"] = stats.counters()
    data["experiments"][experiment] = entry
    _dump_bench(path, data)
    return data


def write_section(path: str | pathlib.Path, name: str, payload: dict) -> dict:
    """Merge one top-level section (e.g. ``"kernels"``, ``"resilience"``)
    into the artifact, preserving everything else. Returns the written
    document."""
    path = pathlib.Path(path)
    data = _load_bench(path)
    data[name] = payload
    _dump_bench(path, data)
    return data


def write_kernels_bench(path: str | pathlib.Path, kernels: dict) -> dict:
    """Merge the exact-kernel micro-benchmark section into the artifact.

    ``kernels`` is stored verbatim under the top-level ``"kernels"``
    key (see the module docstring for the shape the kernel benchmark
    writes); every ``experiments`` entry is preserved. Returns the
    written document.
    """
    return write_section(path, "kernels", kernels)


def _load_bench(path: pathlib.Path) -> dict:
    """Read the artifact, migrating ``repro-bench/1`` files forward."""
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            data = {}
    schema = data.get("schema")
    if schema not in (BENCH_SCHEMA, _BENCH_SCHEMA_V1) or not isinstance(
        data.get("experiments"), dict
    ):
        data = {"experiments": {}}
    data["schema"] = BENCH_SCHEMA
    return data


def _dump_bench(path: pathlib.Path, data: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, default=str) + "\n")
