"""Crash-safe result journal for resumable experiment campaigns.

The paper's grids are hours-long campaigns of hundreds of independent
synthesis+validation tasks; a killed process must not cost the whole
run. This module persists every completed task verdict to an
append-only JSONL file so an interrupted campaign can be resumed with
``--resume`` and replay everything already decided:

* **Fingerprints** — each task is keyed by :func:`task_fingerprint`, a
  SHA-256 over the task kind, its identifying fields
  (case/mode/method/backend/sigfigs/...), and a code-version salt
  (:data:`JOURNAL_SALT`). The digest is content-derived (no ``hash()``
  randomization), so the same task spec produces the same fingerprint
  in any process on any run; any field change — or a salt bump when
  result semantics change — produces a new fingerprint and therefore a
  clean re-run.
* **Durability** — every record is one JSON line written in a single
  ``write`` call, flushed and ``fsync``'d before :meth:`Journal.record`
  returns. A crash mid-write leaves at most one truncated trailing
  line, which replay tolerates (skipped, so that task simply re-runs);
  corrupt interior lines are skipped the same way, and duplicate
  fingerprints resolve last-wins.
* **Replay** — ``run_tasks(..., journal=...)`` consults
  :meth:`Journal.get` per task: a hit short-circuits execution and
  returns
  the recorded result (timing status ``"replayed"``), a miss runs the
  task and appends its outcome. Results round-trip exactly (floats via
  JSON shortest-repr, ``Fraction``/NumPy/record dataclasses via tagged
  encoding), so a fully-replayed campaign renders byte-identically to
  the run that produced the journal.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pathlib
import pickle
from dataclasses import dataclass, fields, is_dataclass
from fractions import Fraction
from typing import Any

import numpy as np

__all__ = [
    "JOURNAL_SALT",
    "Journal",
    "JournalEntry",
    "task_fingerprint",
    "encode_value",
    "decode_value",
    "register_record_type",
]

#: Code-version salt folded into every fingerprint. Bump the suffix
#: whenever task or result semantics change incompatibly: every old
#: journal entry then misses and the campaign re-runs from scratch
#: instead of replaying stale verdicts.
JOURNAL_SALT = "repro-journal/1"


# ----------------------------------------------------------------------
# Tagged JSON encoding (exact round-trip for result payloads)
# ----------------------------------------------------------------------

#: Dataclass types allowed to cross the journal boundary, by name.
#: Populated lazily (the records live in packages that import the
#: runner back); anything unregistered falls back to pickle+base64.
_RECORD_TYPES: dict[str, type] = {}
_DEFAULTS_LOADED = False


def register_record_type(cls: type) -> type:
    """Register a dataclass for first-class (inspectable) encoding."""
    _RECORD_TYPES[cls.__name__] = cls
    return cls


def _load_default_record_types() -> None:
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    _DEFAULTS_LOADED = True
    from ..experiments.records import (
        Figure3Record,
        PiecewiseRecord,
        Table1Record,
        Table2Record,
    )
    from ..lyapunov import LyapunovCandidate
    from ..oracle.records import FuzzRecord

    for cls in (
        Table1Record, Table2Record, Figure3Record, PiecewiseRecord,
        LyapunovCandidate, FuzzRecord,
    ):
        register_record_type(cls)


def encode_value(value: Any) -> Any:
    """Encode ``value`` into JSON-safe data with exact round-trip.

    Handles the closed set of types runner results are made of —
    scalars, lists/tuples/dicts, ``Fraction``, NumPy arrays and the
    registered record dataclasses — and falls back to pickle+base64 for
    anything else (still exact, just not human-readable).
    """
    _load_default_record_types()
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, Fraction):
        return {"__frac__": [str(value.numerator), str(value.denominator)]}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {"__map__": {k: encode_value(v) for k, v in value.items()}}
        return {
            "__items__": [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ]
        }
    if isinstance(value, np.ndarray):
        return {
            "__nd__": {
                "dtype": str(value.dtype),
                "data": value.tolist(),
            }
        }
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return encode_value(value.item())
    if is_dataclass(value) and type(value).__name__ in _RECORD_TYPES:
        return {
            "__rec__": type(value).__name__,
            "f": {
                f.name: encode_value(getattr(value, f.name))
                for f in fields(value)
            },
        }
    return {
        "__pkl__": base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
    }


def decode_value(payload: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    _load_default_record_types()
    if payload is None or isinstance(payload, (bool, int, str, float)):
        return payload
    if isinstance(payload, list):
        return [decode_value(v) for v in payload]
    if not isinstance(payload, dict):
        raise ValueError(f"unknown journal payload {type(payload).__name__}")
    if "__frac__" in payload:
        num, den = payload["__frac__"]
        return Fraction(int(num), int(den))
    if "__tuple__" in payload:
        return tuple(decode_value(v) for v in payload["__tuple__"])
    if "__map__" in payload:
        return {k: decode_value(v) for k, v in payload["__map__"].items()}
    if "__items__" in payload:
        return {
            decode_value(k): decode_value(v) for k, v in payload["__items__"]
        }
    if "__nd__" in payload:
        spec = payload["__nd__"]
        return np.array(spec["data"], dtype=np.dtype(spec["dtype"]))
    if "__rec__" in payload:
        cls = _RECORD_TYPES.get(payload["__rec__"])
        if cls is None:
            raise ValueError(f"unknown record type {payload['__rec__']!r}")
        return cls(**{k: decode_value(v) for k, v in payload["f"].items()})
    if "__pkl__" in payload:
        return pickle.loads(base64.b64decode(payload["__pkl__"]))
    raise ValueError(f"unknown journal payload keys {sorted(payload)}")


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------

def task_fingerprint(task) -> str:
    """Stable content hash identifying a task across processes and runs.

    Uses the task's :meth:`~repro.runner.Task.fingerprint_spec` (kind +
    identifying fields), canonically JSON-encoded with sorted keys, plus
    :data:`JOURNAL_SALT`. Two processes building the same task spec get
    the same hex digest; any differing field (or a salt bump) yields a
    different one.

    The digest is memoized on the task instance (``_fingerprint``):
    task specs are immutable once built, and campaign hot loops — the
    journal replay scan, the service cache, retry bookkeeping — look up
    the same task repeatedly, so the tagged-JSON encode runs at most
    once per instance. Underscore-prefixed attributes are excluded from
    the default :meth:`~repro.runner.Task.fingerprint_spec`, so the
    cache itself never feeds back into the digest.
    """
    cached = getattr(task, "_fingerprint", None)
    if cached is not None:
        return cached
    kind, spec = task.fingerprint_spec()
    canonical = json.dumps(
        {"salt": JOURNAL_SALT, "kind": kind, "spec": encode_value(spec)},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    try:
        task._fingerprint = digest
    except (AttributeError, TypeError):  # __slots__ or frozen tasks
        pass
    return digest


# ----------------------------------------------------------------------
# The journal itself
# ----------------------------------------------------------------------

@dataclass
class JournalEntry:
    """One replayable task outcome."""

    fingerprint: str
    kind: str
    status: str  # "ok" | "error" | "timeout" | "fallback"
    result: Any
    attempts: int = 1
    error: dict | None = None


class Journal:
    """Append-only fsync'd JSONL journal of completed task outcomes.

    ``resume=True`` loads every intact entry from an existing file and
    keeps appending to it; ``resume=False`` truncates and starts a fresh
    campaign. Use as a context manager (or call :meth:`close`).
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        resume: bool = False,
        fsync: bool = True,
    ) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._entries: dict[str, JournalEntry] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._entries = _load_entries(self.path)
            _trim_torn_tail(self.path)
        self._handle = open(self.path, "ab" if resume else "wb")

    # -- reading -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def fingerprint(self, task) -> str:
        return task_fingerprint(task)

    def get(self, fingerprint: str) -> JournalEntry | None:
        """The recorded outcome for ``fingerprint``, or ``None``."""
        return self._entries.get(fingerprint)

    # -- writing -------------------------------------------------------

    def record(
        self,
        fingerprint: str,
        kind: str,
        status: str,
        result: Any,
        attempts: int = 1,
        error: dict | None = None,
    ) -> JournalEntry:
        """Append one completed outcome and fsync it to disk."""
        entry = JournalEntry(
            fingerprint=fingerprint, kind=kind, status=status,
            result=result, attempts=attempts, error=error,
        )
        line = json.dumps(
            {
                "v": 1,
                "fp": fingerprint,
                "kind": kind,
                "status": status,
                "attempts": attempts,
                "error": error,
                "result": encode_value(result),
            },
            separators=(",", ":"),
        )
        self._write((line + "\n").encode("utf-8"))
        self._entries[fingerprint] = entry
        return entry

    def record_corrupt(self, fingerprint: str, kind: str) -> None:
        """Deliberately write a corrupt record (chaos harness only).

        Emits the truncated prefix of a real entry — what a crash in the
        middle of :meth:`record` leaves behind — so tests can prove that
        replay skips it and the task re-runs. The fragment is newline-
        terminated (unlike a genuine crash, the process lives on and
        must not splice the *next* record into the garbage line).
        """
        line = json.dumps(
            {"v": 1, "fp": fingerprint, "kind": kind, "status": "ok"}
        )
        self._write(
            line[: max(4, len(line) // 2)].encode("utf-8") + b"\n"
        )

    def _write(self, data: bytes) -> None:
        self._handle.write(data)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _trim_torn_tail(path: pathlib.Path) -> None:
    """Drop a torn (newline-less) trailing line before appending.

    A crash mid-``record`` leaves a truncated final line; appending new
    records straight after it would splice the first of them into the
    garbage, losing a *good* entry on the next resume. The torn tail
    carries no recoverable data, so it is truncated away.
    """
    size = path.stat().st_size
    if size == 0:
        return
    with open(path, "rb+") as handle:
        handle.seek(max(0, size - 1))
        if handle.read(1) == b"\n":
            return
        handle.seek(0)
        content = handle.read()
        keep = content.rfind(b"\n") + 1  # 0 when no newline at all
        handle.truncate(keep)


def _load_entries(path: pathlib.Path) -> dict[str, JournalEntry]:
    """Parse every intact line; skip torn/corrupt ones (they re-run)."""
    entries: dict[str, JournalEntry] = {}
    with open(path, "rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                break  # torn trailing line from a mid-write crash
            try:
                obj = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                continue
            if not isinstance(obj, dict) or "fp" not in obj:
                continue
            if "result" not in obj or "status" not in obj:
                continue
            try:
                result = decode_value(obj["result"])
            except Exception:
                continue
            entries[obj["fp"]] = JournalEntry(
                fingerprint=obj["fp"],
                kind=obj.get("kind", "?"),
                status=obj["status"],
                result=result,
                attempts=int(obj.get("attempts", 1)),
                error=obj.get("error"),
            )
    return entries
