"""Crash-safe result journal for resumable experiment campaigns.

The paper's grids are hours-long campaigns of hundreds of independent
synthesis+validation tasks; a killed process must not cost the whole
run. This module persists every completed task verdict to an
append-only JSONL file so an interrupted campaign can be resumed with
``--resume`` and replay everything already decided:

* **Fingerprints** — each task is keyed by :func:`task_fingerprint`, a
  SHA-256 over the task kind, its identifying fields
  (case/mode/method/backend/sigfigs/...), and a code-version salt
  (:data:`JOURNAL_SALT`). The digest is content-derived (no ``hash()``
  randomization), so the same task spec produces the same fingerprint
  in any process on any run; any field change — or a salt bump when
  result semantics change — produces a new fingerprint and therefore a
  clean re-run.
* **Durability** — every record is one JSON line written in a single
  ``write`` call, flushed and ``fsync``'d before :meth:`Journal.record`
  returns. A crash mid-write leaves at most one truncated trailing
  line, which replay tolerates (skipped, so that task simply re-runs);
  corrupt interior lines are skipped the same way, and duplicate
  fingerprints resolve last-wins.
* **Replay** — ``run_tasks(..., journal=...)`` consults
  :meth:`Journal.get` per task: a hit short-circuits execution and
  returns
  the recorded result (timing status ``"replayed"``), a miss runs the
  task and appends its outcome. Results round-trip exactly (floats via
  JSON shortest-repr, ``Fraction``/NumPy/record dataclasses via tagged
  encoding), so a fully-replayed campaign renders byte-identically to
  the run that produced the journal.
* **Mergeability** — records carry no worker, shard or wall-clock
  identity, only content: the same task completed anywhere produces the
  same line bytes (for deterministic result payloads). That makes
  per-shard journals of a distributed campaign mergeable by
  :func:`merge_journals` with last-wins dedup, and the merged file's
  sorted-line digest (:func:`journal_digest`) invariant to shard count,
  shard deaths and steal order. ``python -m repro.runner.journal
  merge|digest`` exposes both from the command line.
* **Read-only tailing** — :meth:`Journal.load` opens a journal without
  taking the write path: no file handle is held open, no fsync, and —
  unlike the ``resume=True`` write path — a torn trailing line is
  *not* truncated away, so a supervisor or telemetry view can tail a
  shard journal that another process is still appending to.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pathlib
import pickle
from dataclasses import dataclass, fields, is_dataclass
from fractions import Fraction
from typing import Any

import numpy as np

__all__ = [
    "JOURNAL_SALT",
    "Journal",
    "JournalEntry",
    "task_fingerprint",
    "encode_value",
    "decode_value",
    "register_record_type",
    "merge_journals",
    "journal_digest",
]

#: Code-version salt folded into every fingerprint. Bump the suffix
#: whenever task or result semantics change incompatibly: every old
#: journal entry then misses and the campaign re-runs from scratch
#: instead of replaying stale verdicts.
JOURNAL_SALT = "repro-journal/1"


# ----------------------------------------------------------------------
# Tagged JSON encoding (exact round-trip for result payloads)
# ----------------------------------------------------------------------

#: Dataclass types allowed to cross the journal boundary, by name.
#: Populated lazily (the records live in packages that import the
#: runner back); anything unregistered falls back to pickle+base64.
_RECORD_TYPES: dict[str, type] = {}
_DEFAULTS_LOADED = False


def register_record_type(cls: type) -> type:
    """Register a dataclass for first-class (inspectable) encoding."""
    _RECORD_TYPES[cls.__name__] = cls
    return cls


def _load_default_record_types() -> None:
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    _DEFAULTS_LOADED = True
    from ..experiments.records import (
        Figure3Record,
        PiecewiseRecord,
        Table1Record,
        Table2Record,
    )
    from ..lyapunov import LyapunovCandidate
    from ..oracle.records import FuzzRecord

    for cls in (
        Table1Record, Table2Record, Figure3Record, PiecewiseRecord,
        LyapunovCandidate, FuzzRecord,
    ):
        register_record_type(cls)


def encode_value(value: Any) -> Any:
    """Encode ``value`` into JSON-safe data with exact round-trip.

    Handles the closed set of types runner results are made of —
    scalars, lists/tuples/dicts, ``Fraction``, NumPy arrays and the
    registered record dataclasses — and falls back to pickle+base64 for
    anything else (still exact, just not human-readable).
    """
    _load_default_record_types()
    if value is None or isinstance(value, (bool, int, str, float)):
        return value
    if isinstance(value, Fraction):
        return {"__frac__": [str(value.numerator), str(value.denominator)]}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {"__map__": {k: encode_value(v) for k, v in value.items()}}
        return {
            "__items__": [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ]
        }
    if isinstance(value, np.ndarray):
        return {
            "__nd__": {
                "dtype": str(value.dtype),
                "data": value.tolist(),
            }
        }
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return encode_value(value.item())
    if is_dataclass(value) and type(value).__name__ in _RECORD_TYPES:
        return {
            "__rec__": type(value).__name__,
            "f": {
                f.name: encode_value(getattr(value, f.name))
                for f in fields(value)
            },
        }
    return {
        "__pkl__": base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
    }


def decode_value(payload: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    _load_default_record_types()
    if payload is None or isinstance(payload, (bool, int, str, float)):
        return payload
    if isinstance(payload, list):
        return [decode_value(v) for v in payload]
    if not isinstance(payload, dict):
        raise ValueError(f"unknown journal payload {type(payload).__name__}")
    if "__frac__" in payload:
        num, den = payload["__frac__"]
        return Fraction(int(num), int(den))
    if "__tuple__" in payload:
        return tuple(decode_value(v) for v in payload["__tuple__"])
    if "__map__" in payload:
        return {k: decode_value(v) for k, v in payload["__map__"].items()}
    if "__items__" in payload:
        return {
            decode_value(k): decode_value(v) for k, v in payload["__items__"]
        }
    if "__nd__" in payload:
        spec = payload["__nd__"]
        return np.array(spec["data"], dtype=np.dtype(spec["dtype"]))
    if "__rec__" in payload:
        cls = _RECORD_TYPES.get(payload["__rec__"])
        if cls is None:
            raise ValueError(f"unknown record type {payload['__rec__']!r}")
        return cls(**{k: decode_value(v) for k, v in payload["f"].items()})
    if "__pkl__" in payload:
        return pickle.loads(base64.b64decode(payload["__pkl__"]))
    raise ValueError(f"unknown journal payload keys {sorted(payload)}")


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------

def task_fingerprint(task) -> str:
    """Stable content hash identifying a task across processes and runs.

    Uses the task's :meth:`~repro.runner.Task.fingerprint_spec` (kind +
    identifying fields), canonically JSON-encoded with sorted keys, plus
    :data:`JOURNAL_SALT`. Two processes building the same task spec get
    the same hex digest; any differing field (or a salt bump) yields a
    different one.

    The digest is memoized on the task instance (``_fingerprint``):
    task specs are immutable once built, and campaign hot loops — the
    journal replay scan, the service cache, retry bookkeeping — look up
    the same task repeatedly, so the tagged-JSON encode runs at most
    once per instance. Underscore-prefixed attributes are excluded from
    the default :meth:`~repro.runner.Task.fingerprint_spec`, so the
    cache itself never feeds back into the digest.
    """
    cached = getattr(task, "_fingerprint", None)
    if cached is not None:
        return cached
    kind, spec = task.fingerprint_spec()
    canonical = json.dumps(
        {"salt": JOURNAL_SALT, "kind": kind, "spec": encode_value(spec)},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    try:
        task._fingerprint = digest
    except (AttributeError, TypeError):  # __slots__ or frozen tasks
        pass
    return digest


# ----------------------------------------------------------------------
# The journal itself
# ----------------------------------------------------------------------

@dataclass
class JournalEntry:
    """One replayable task outcome."""

    fingerprint: str
    kind: str
    status: str  # "ok" | "error" | "timeout" | "fallback"
    result: Any
    attempts: int = 1
    error: dict | None = None


class Journal:
    """Append-only fsync'd JSONL journal of completed task outcomes.

    ``resume=True`` loads every intact entry from an existing file and
    keeps appending to it; ``resume=False`` truncates and starts a fresh
    campaign. Use as a context manager (or call :meth:`close`).
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        resume: bool = False,
        fsync: bool = True,
    ) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self.readonly = False
        self._entries: dict[str, JournalEntry] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._entries = _load_entries(self.path)
            _trim_torn_tail(self.path)
        self._handle = open(self.path, "ab" if resume else "wb")

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Journal":
        """Open a journal *read-only* (no write handle, no fsync).

        The supervisor and the telemetry view tail per-shard journals
        that other processes are still appending to; taking the write
        path there would truncate a torn tail out from under the owning
        writer (and contend on the file handle). ``load`` parses every
        intact entry — a torn trailing line is simply skipped, never
        truncated — and leaves the file untouched. A missing file loads
        as an empty journal. Every write method raises.
        """
        self = cls.__new__(cls)
        self.path = pathlib.Path(path)
        self.fsync = False
        self.readonly = True
        self._handle = None
        self._entries = (
            _load_entries(self.path) if self.path.exists() else {}
        )
        return self

    def reload(self) -> None:
        """Re-read the file (read-only journals only): pick up entries
        appended by the owning writer since :meth:`load`."""
        if not self.readonly:
            raise ValueError("reload() is only for read-only journals")
        self._entries = (
            _load_entries(self.path) if self.path.exists() else {}
        )

    # -- reading -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def fingerprint(self, task) -> str:
        return task_fingerprint(task)

    def get(self, fingerprint: str) -> JournalEntry | None:
        """The recorded outcome for ``fingerprint``, or ``None``."""
        return self._entries.get(fingerprint)

    def fingerprints(self) -> set[str]:
        """The set of recorded fingerprints (a snapshot)."""
        return set(self._entries)

    def entries(self):
        """Iterate the recorded :class:`JournalEntry` values."""
        return iter(self._entries.values())

    # -- writing -------------------------------------------------------

    def record(
        self,
        fingerprint: str,
        kind: str,
        status: str,
        result: Any,
        attempts: int = 1,
        error: dict | None = None,
    ) -> JournalEntry:
        """Append one completed outcome and fsync it to disk."""
        entry = JournalEntry(
            fingerprint=fingerprint, kind=kind, status=status,
            result=result, attempts=attempts, error=error,
        )
        line = json.dumps(
            {
                "v": 1,
                "fp": fingerprint,
                "kind": kind,
                "status": status,
                "attempts": attempts,
                "error": error,
                "result": encode_value(result),
            },
            separators=(",", ":"),
        )
        self._write((line + "\n").encode("utf-8"))
        self._entries[fingerprint] = entry
        return entry

    def record_corrupt(self, fingerprint: str, kind: str) -> None:
        """Deliberately write a corrupt record (chaos harness only).

        Emits the truncated prefix of a real entry — what a crash in the
        middle of :meth:`record` leaves behind — so tests can prove that
        replay skips it and the task re-runs. The fragment is newline-
        terminated (unlike a genuine crash, the process lives on and
        must not splice the *next* record into the garbage line).
        """
        line = json.dumps(
            {"v": 1, "fp": fingerprint, "kind": kind, "status": "ok"}
        )
        self._write(
            line[: max(4, len(line) // 2)].encode("utf-8") + b"\n"
        )

    def absorb_line(self, raw: bytes) -> JournalEntry | None:
        """Append one raw journal line verbatim (merge plumbing).

        The shard supervisor folds per-shard journals back into the
        campaign's main journal *byte for byte* — re-encoding through
        :meth:`record` would be equivalent (the tagged encoding
        round-trips exactly) but copying the line is cheaper and makes
        the merged-digest invariant true by construction. The line must
        parse as an intact journal entry; unparseable lines are
        rejected (returns ``None``, nothing written).
        """
        if not raw.endswith(b"\n"):
            raw += b"\n"
        parsed = _parse_line(raw)
        if parsed is None:
            return None
        fingerprint, entry = parsed
        self._write(raw)
        self._entries[fingerprint] = entry
        return entry

    def _write(self, data: bytes) -> None:
        if self.readonly:
            raise ValueError(
                f"journal {self.path} was opened read-only (Journal.load)"
            )
        self._handle.write(data)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _trim_torn_tail(path: pathlib.Path) -> None:
    """Drop a torn (newline-less) trailing line before appending.

    A crash mid-``record`` leaves a truncated final line; appending new
    records straight after it would splice the first of them into the
    garbage, losing a *good* entry on the next resume. The torn tail
    carries no recoverable data, so it is truncated away.
    """
    size = path.stat().st_size
    if size == 0:
        return
    with open(path, "rb+") as handle:
        handle.seek(max(0, size - 1))
        if handle.read(1) == b"\n":
            return
        handle.seek(0)
        content = handle.read()
        keep = content.rfind(b"\n") + 1  # 0 when no newline at all
        handle.truncate(keep)


def _parse_line(raw: bytes) -> tuple[str, JournalEntry] | None:
    """Decode one newline-terminated journal line; ``None`` if corrupt."""
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(obj, dict) or "fp" not in obj:
        return None
    if "result" not in obj or "status" not in obj:
        return None
    try:
        result = decode_value(obj["result"])
    except Exception:
        return None
    return obj["fp"], JournalEntry(
        fingerprint=obj["fp"],
        kind=obj.get("kind", "?"),
        status=obj["status"],
        result=result,
        attempts=int(obj.get("attempts", 1)),
        error=obj.get("error"),
    )


def _load_entries(path: pathlib.Path) -> dict[str, JournalEntry]:
    """Parse every intact line; skip torn/corrupt ones (they re-run)."""
    entries: dict[str, JournalEntry] = {}
    with open(path, "rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                break  # torn trailing line from a mid-write crash
            parsed = _parse_line(raw)
            if parsed is None:
                continue
            fingerprint, entry = parsed
            entries[fingerprint] = entry
    return entries


# ----------------------------------------------------------------------
# Merging per-shard journals
# ----------------------------------------------------------------------

#: Preference order when two shards hold *different* bytes for the same
#: fingerprint (a task that errored on a dying shard and then succeeded
#: on the shard that stole it): the most decided outcome wins.
_STATUS_RANK = {"ok": 3, "fallback": 2, "timeout": 1, "error": 0}


def _raw_entries(path: pathlib.Path):
    """Yield ``(fingerprint, status, raw_line)`` for every intact line.

    Torn trailing lines (no newline — a shard crashed mid-write) and
    corrupt interior lines are skipped, exactly like replay does.
    """
    with open(path, "rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                break
            try:
                obj = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                continue
            if not isinstance(obj, dict) or "fp" not in obj:
                continue
            if "result" not in obj or "status" not in obj:
                continue
            yield obj["fp"], obj.get("status", "?"), raw


def _merge_wins(new: tuple[str, bytes], old: tuple[str, bytes]) -> bool:
    """Deterministic, order-independent duplicate resolution.

    Higher status rank wins; ties break on the lexicographically larger
    line bytes. Both comparisons are symmetric in the inputs' *file*
    order, which is what makes :func:`merge_journals` invariant under
    permutation of the shard files.
    """
    new_rank = _STATUS_RANK.get(new[0], -1)
    old_rank = _STATUS_RANK.get(old[0], -1)
    if new_rank != old_rank:
        return new_rank > old_rank
    return new[1] > old[1]


def merge_journals(
    paths,
    out: str | pathlib.Path | None = None,
) -> dict[str, bytes]:
    """Merge per-shard journals into one fingerprint-keyed line map.

    Within one file, duplicates resolve last-wins (the journal's own
    re-run semantic). Across files, duplicates resolve by
    :func:`_merge_wins` — a deterministic rule that does not depend on
    the order ``paths`` are listed in, so the merged content is
    invariant to shard count, shard deaths and steal order. Missing
    files are skipped (a shard that died before journaling anything).

    When ``out`` is given, the merged lines are written there sorted by
    fingerprint — a well-formed journal file whose sorted-line digest
    (:func:`journal_digest`) equals the digest of the union of inputs.
    Returns the ``fingerprint -> raw line`` map.
    """
    merged: dict[str, tuple[str, bytes]] = {}
    for path in sorted(pathlib.Path(p) for p in paths):
        if not path.exists():
            continue
        per_file: dict[str, tuple[str, bytes]] = {}
        for fingerprint, status, raw in _raw_entries(path):
            per_file[fingerprint] = (status, raw)  # last-wins within file
        for fingerprint, candidate in per_file.items():
            present = merged.get(fingerprint)
            if present is None or _merge_wins(candidate, present):
                merged[fingerprint] = candidate
    lines = {fp: raw for fp, (_status, raw) in merged.items()}
    if out is not None:
        out = pathlib.Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        data = b"".join(lines[fp] for fp in sorted(lines))
        tmp = out.with_name(out.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, out)
    return lines


def journal_digest(path: str | pathlib.Path) -> str:
    """SHA-256 over the *sorted* intact journal lines.

    Workers and shards complete in nondeterministic order, so the
    file's byte order varies with scheduling — but the set of lines
    does not. Sorting before hashing gives a digest invariant across
    job counts, shard counts, shard deaths and steal order (for
    deterministic result payloads), which is what the determinism
    checks compare. Duplicate lines are deduplicated first (a task
    double-executed by a steal contributes once), and torn/corrupt
    lines are excluded just as replay excludes them.
    """
    lines = sorted(
        {raw for _fp, _status, raw in _raw_entries(pathlib.Path(path))}
    )
    return hashlib.sha256(b"".join(lines)).hexdigest()


def _main(argv=None) -> int:
    """``python -m repro.runner.journal`` — merge and digest tooling."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.journal",
        description="Journal maintenance: merge per-shard journals, "
        "print order-invariant digests.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    merge = sub.add_parser(
        "merge", help="merge shard journals into one combined journal"
    )
    merge.add_argument("out", type=pathlib.Path, help="merged output path")
    merge.add_argument(
        "inputs", nargs="+", type=pathlib.Path, help="per-shard journals"
    )
    digest = sub.add_parser(
        "digest", help="print 'sha256 entry-count' of a journal"
    )
    digest.add_argument("path", type=pathlib.Path)
    args = parser.parse_args(argv)
    if args.command == "merge":
        lines = merge_journals(args.inputs, out=args.out)
        print(f"{args.out}: {len(lines)} entries "
              f"from {len(args.inputs)} journal(s)")
        print(f"{journal_digest(args.out)} {len(lines)}")
        return 0
    entries = {fp for fp, _s, _r in _raw_entries(args.path)}
    print(f"{journal_digest(args.path)} {len(entries)}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    import sys

    sys.exit(_main())
