"""Parallel experiment execution (process pool, timing, task protocol,
durability).

The paper's headline cost is the Table I / Table II / Figure 3 grid —
hundreds of independent ``(case, mode, method, backend)``
synthesis+validation tasks. :func:`run_tasks` fans them out over
shared-nothing worker processes with per-task wall-clock deadlines,
deterministic result ordering, retry-with-backoff for transient
failures, and graceful degradation to in-process execution (``jobs=1``
or no usable pool). :mod:`repro.runner.timing` records per-task wall
times into the ``BENCH_experiments.json`` performance-trajectory
artifact; :mod:`repro.runner.journal` persists every completed verdict
to an append-only fsync'd JSONL journal so killed campaigns resume by
replay; :mod:`repro.runner.chaos` injects deterministic faults to prove
those invariants hold.

For campaigns that must survive losing a whole *group* of workers,
:mod:`repro.runner.shard` partitions the task list by fingerprint hash
into independently-supervised shard processes with heartbeat leases,
work-stealing and requeue-on-death; per-shard journals merge
deterministically (:func:`merge_journals` / :func:`journal_digest`)
back into the campaign journal, and :mod:`repro.runner.telemetry`
renders live progress from the lease files alone.
"""

from .core import (
    CampaignStats,
    RetryPolicy,
    Task,
    TransientTaskError,
    resolve_jobs,
    run_tasks,
)
from .chaos import (
    ChaosError,
    ChaosPermanentError,
    ChaosPolicy,
    ChaosTask,
    ShardChaosPolicy,
)
from .journal import (
    JOURNAL_SALT,
    Journal,
    JournalEntry,
    decode_value,
    encode_value,
    journal_digest,
    merge_journals,
    register_record_type,
    task_fingerprint,
)
from .shard import resolve_shards, run_sharded, shard_of
from .tasks import (
    CegisTask,
    Figure3Task,
    FuzzTask,
    PiecewiseTask,
    RevalidateTask,
    Table1Task,
    Table2Task,
)
from .timing import (
    BENCH_SCHEMA,
    TaskTiming,
    TimingCollector,
    write_bench,
    write_kernels_bench,
    write_section,
)

__all__ = [
    "Task",
    "TransientTaskError",
    "RetryPolicy",
    "CampaignStats",
    "run_tasks",
    "resolve_jobs",
    "run_sharded",
    "resolve_shards",
    "shard_of",
    "Journal",
    "JournalEntry",
    "JOURNAL_SALT",
    "task_fingerprint",
    "encode_value",
    "decode_value",
    "register_record_type",
    "merge_journals",
    "journal_digest",
    "ChaosError",
    "ChaosPermanentError",
    "ChaosPolicy",
    "ChaosTask",
    "ShardChaosPolicy",
    "Table1Task",
    "RevalidateTask",
    "Figure3Task",
    "Table2Task",
    "PiecewiseTask",
    "CegisTask",
    "FuzzTask",
    "TaskTiming",
    "TimingCollector",
    "write_bench",
    "write_section",
    "write_kernels_bench",
    "BENCH_SCHEMA",
]
