"""Parallel experiment execution (process pool, timing, task protocol).

The paper's headline cost is the Table I / Table II / Figure 3 grid —
hundreds of independent ``(case, mode, method, backend)``
synthesis+validation tasks. :func:`run_tasks` fans them out over
shared-nothing worker processes with per-task wall-clock deadlines and
deterministic result ordering, degrading gracefully to in-process
execution (``jobs=1`` or no usable pool); :mod:`repro.runner.timing`
records per-task wall times into the ``BENCH_experiments.json``
performance-trajectory artifact.
"""

from .core import Task, resolve_jobs, run_tasks
from .tasks import (
    Figure3Task,
    PiecewiseTask,
    RevalidateTask,
    Table1Task,
    Table2Task,
)
from .timing import (
    BENCH_SCHEMA,
    TaskTiming,
    TimingCollector,
    write_bench,
    write_kernels_bench,
)

__all__ = [
    "Task",
    "run_tasks",
    "resolve_jobs",
    "Table1Task",
    "RevalidateTask",
    "Figure3Task",
    "Table2Task",
    "PiecewiseTask",
    "TaskTiming",
    "TimingCollector",
    "write_bench",
    "write_kernels_bench",
    "BENCH_SCHEMA",
]
