"""Live telemetry for sharded campaigns: heartbeat leases and a
plaintext dashboard.

A sharded campaign (:mod:`repro.runner.shard`) leaves two kinds of
state on disk next to its journal: per-shard **journals** (the data
plane — every completed task outcome) and per-shard **lease files**
(the control plane — one small JSON document per shard, atomically
rewritten every heartbeat). The supervisor reads leases to decide
liveness; this module reads the same files to render progress, so a
``--watch`` view — in-process or from a second terminal via
``python -m repro.runner.telemetry <journal-base>`` — needs no
connection to the supervisor at all. Journals are tailed read-only
(:meth:`repro.runner.Journal.load`): telemetry never takes the write
path, never fsyncs and never truncates a torn tail out from under the
shard that owns the file.

Lease document fields (all optional but ``shard`` and ``ts``)::

    {"shard": 2, "pid": 4242, "ts": 1722.5,     # heartbeat wall-clock
     "state": "running",                         # running|done|dead
     "done": 17, "assigned": 25,                 # task counters
     "retried": 1, "requeued": 0, "stolen": 3,   # resilience counters
     "started": 1700.0,                          # campaign start
     "current_started": 1721.9}                  # in-flight task epoch
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass, field

__all__ = [
    "ShardStatus",
    "write_lease",
    "read_lease",
    "lease_path",
    "shard_journal_path",
    "scan_campaign",
    "render_dashboard",
    "watch",
]


def shard_journal_path(base: str | pathlib.Path, shard: int) -> pathlib.Path:
    """The per-shard journal path derived from the campaign base path."""
    base = pathlib.Path(base)
    return base.with_name(f"{base.name}.shard{shard}")


def lease_path(base: str | pathlib.Path, shard: int) -> pathlib.Path:
    """The heartbeat lease path derived from the campaign base path."""
    base = pathlib.Path(base)
    return base.with_name(f"{base.name}.shard{shard}.lease")


def write_lease(path: str | pathlib.Path, payload: dict) -> None:
    """Atomically (re)write one lease document.

    Write-to-temp plus ``os.replace`` so a reader never observes a
    half-written lease — a torn lease would spuriously look expired
    and get its healthy shard declared dead.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(payload, separators=(",", ":")) + "\n")
    os.replace(tmp, path)


def read_lease(path: str | pathlib.Path) -> dict | None:
    """Parse one lease document; ``None`` when missing or corrupt."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "ts" not in payload:
        return None
    return payload


@dataclass
class ShardStatus:
    """One shard's progress as seen from its lease + journal files."""

    shard: int
    state: str = "unknown"  # running | done | dead | unknown
    pid: int | None = None
    done: int = 0
    assigned: int = 0
    retried: int = 0
    requeued: int = 0
    stolen: int = 0
    #: Seconds since the last heartbeat (inf when no lease exists).
    age_s: float = float("inf")
    #: Seconds the in-flight task has been running, if any.
    current_s: float | None = None
    #: Campaign epoch the shard reported at startup.
    started: float | None = None
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_lease(
        cls, shard: int, payload: dict | None, now: float | None = None
    ) -> "ShardStatus":
        if payload is None:
            return cls(shard=shard)
        now = time.time() if now is None else now
        current = payload.get("current_started")
        return cls(
            shard=int(payload.get("shard", shard)),
            state=str(payload.get("state", "running")),
            pid=payload.get("pid"),
            done=int(payload.get("done", 0)),
            assigned=int(payload.get("assigned", 0)),
            retried=int(payload.get("retried", 0)),
            requeued=int(payload.get("requeued", 0)),
            stolen=int(payload.get("stolen", 0)),
            age_s=max(0.0, now - float(payload["ts"])),
            current_s=(
                max(0.0, now - float(current)) if current is not None
                else None
            ),
            started=payload.get("started"),
        )


def scan_campaign(
    base: str | pathlib.Path,
    shards: int | None = None,
    now: float | None = None,
) -> list[ShardStatus]:
    """Read every shard's lease under the campaign ``base`` path.

    ``shards=None`` discovers shards by globbing lease files, so a
    second-terminal watcher needs only the journal base path. The
    journal is consulted as a fallback ``done`` count for shards whose
    lease is missing (e.g. a shard killed before its first heartbeat).
    """
    base = pathlib.Path(base)
    now = time.time() if now is None else now
    if shards is None:
        indices = []
        prefix, suffix = base.name + ".shard", ".lease"
        for path in sorted(base.parent.glob(base.name + ".shard*.lease")):
            middle = path.name[len(prefix):-len(suffix)]
            if middle.isdigit():
                indices.append(int(middle))
        indices = sorted(set(indices))
    else:
        indices = list(range(shards))
    statuses = []
    for shard in indices:
        status = ShardStatus.from_lease(
            shard, read_lease(lease_path(base, shard)), now=now
        )
        if status.state == "unknown":
            journal = shard_journal_path(base, shard)
            if journal.exists():
                from .journal import Journal

                status.done = len(Journal.load(journal))
        statuses.append(status)
    return statuses


def _eta(done: int, total: int, elapsed_s: float) -> str:
    if done <= 0 or total <= done or elapsed_s <= 0:
        return "-"
    remaining = elapsed_s * (total - done) / done
    if remaining >= 3600:
        return f"{remaining / 3600:.1f}h"
    if remaining >= 60:
        return f"{remaining / 60:.1f}m"
    return f"{remaining:.0f}s"


def render_dashboard(
    statuses: list[ShardStatus],
    total: int | None = None,
    elapsed_s: float | None = None,
    lease_ttl: float | None = None,
) -> str:
    """Plaintext per-shard progress table plus a campaign summary line.

    Pure function of its inputs (timestamps come in via the statuses),
    so it is directly testable and renders identically in-process and
    from a second terminal. A shard whose heartbeat is older than
    ``lease_ttl`` renders as ``expired`` even if its lease still says
    ``running`` — exactly the condition under which the supervisor
    declares it dead.
    """
    headers = (
        "shard", "state", "pid", "done/assigned",
        "retried", "requeued", "stolen", "beat", "task",
    )
    rows = []
    done_sum = 0
    for status in statuses:
        state = status.state
        if (
            lease_ttl is not None
            and state == "running"
            and status.age_s > lease_ttl
        ):
            state = "expired"
        beat = "-" if status.age_s == float("inf") else f"{status.age_s:.1f}s"
        current = (
            "-" if status.current_s is None else f"{status.current_s:.1f}s"
        )
        rows.append((
            str(status.shard), state,
            "-" if status.pid is None else str(status.pid),
            f"{status.done}/{status.assigned}",
            str(status.retried), str(status.requeued), str(status.stolen),
            beat, current,
        ))
        done_sum += status.done
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    summary = [f"{done_sum} done"]
    if total is not None:
        summary[0] = f"{done_sum}/{total} done"
    summary.append(
        f"{sum(1 for s in statuses if s.state == 'running')} shard(s) live"
    )
    stolen = sum(s.stolen for s in statuses)
    requeued = sum(s.requeued for s in statuses)
    if stolen:
        summary.append(f"{stolen} stolen")
    if requeued:
        summary.append(f"{requeued} requeued")
    if elapsed_s is not None:
        summary.append(f"elapsed {elapsed_s:.1f}s")
        if total is not None:
            summary.append(f"eta {_eta(done_sum, total, elapsed_s)}")
    lines.append("campaign: " + ", ".join(summary))
    return "\n".join(lines)


def watch(
    base: str | pathlib.Path,
    shards: int | None = None,
    interval: float = 1.0,
    total: int | None = None,
    iterations: int | None = None,
    out=None,
) -> None:
    """Poll the lease/journal files and re-render the dashboard.

    This is the second-terminal view: point it at a running campaign's
    journal base path. Stops when every discovered shard reports
    ``done``/``dead`` (or after ``iterations`` renders, for tests).
    """
    import sys

    out = sys.stderr if out is None else out
    started = time.time()
    count = 0
    while True:
        statuses = scan_campaign(base, shards=shards)
        print(
            render_dashboard(
                statuses, total=total, elapsed_s=time.time() - started
            ),
            file=out, flush=True,
        )
        count += 1
        if iterations is not None and count >= iterations:
            return
        if statuses and all(
            s.state in ("done", "dead") for s in statuses
        ):
            return
        time.sleep(interval)


def _main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.telemetry",
        description="Watch a running sharded campaign from its lease "
        "and journal files.",
    )
    parser.add_argument("base", help="campaign journal base path")
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--interval", type=float, default=1.0)
    parser.add_argument(
        "--once", action="store_true", help="render once and exit"
    )
    args = parser.parse_args(argv)
    import sys

    watch(
        args.base, shards=args.shards, interval=args.interval,
        iterations=1 if args.once else None, out=sys.stdout,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    import sys

    sys.exit(_main())
