"""Picklable experiment tasks (the runner's shared-nothing protocol).

A task pickles as a handful of strings/numbers (plus, for
validation-only tasks, the candidate being validated): workers resolve
benchmark cases *by name* via :func:`repro.engine.case_by_name` and
rebuild matrices locally, so nothing heavyweight crosses the pipe.
Per-process ``lru_cache``s (the benchmark ladder, the Table II
mode context) make the rebuilds one-time costs per worker.

Import note: this module imports :mod:`repro.experiments.records`
(pure dataclasses), while the experiment *drivers* import the runner
lazily inside their ``run_*`` functions — that keeps the
``experiments -> runner -> experiments.records`` chain acyclic.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..engine import REGIME_MARGINS, case_by_name, mode_gains, nominal_reference
from ..exact import RationalMatrix, solve_vector, to_fraction
from ..experiments.records import (
    CegisRecord,
    Figure3Record,
    PiecewiseRecord,
    Table1Record,
    Table2Record,
)
from ..lyapunov import SynthesisTimeout, synthesize, synthesize_piecewise
from ..sdp import LmiInfeasibleError
from ..systems import closed_loop_matrices
from ..validate import validate_candidate, validate_piecewise
from .core import Task

__all__ = [
    "Table1Task",
    "RevalidateTask",
    "Figure3Task",
    "Table2Task",
    "PiecewiseTask",
    "CegisTask",
    "FuzzTask",
]


def _candidate_fingerprint(candidate) -> dict:
    """The stable identity of a candidate for journal fingerprints.

    ``P`` (deterministically synthesized), the method and the backend
    identify the candidate; measured wall times and solver diagnostics
    (``synthesis_time``, ``info``) are volatile across runs and must
    not perturb the fingerprint, or resumed campaigns would never
    replay validation tasks.
    """
    return {
        "p": candidate.p.tolist(),
        "method": candidate.method,
        "backend": candidate.backend,
    }


@lru_cache(maxsize=64)
def _exact_mode_matrix(case_name: str, mode: int) -> RationalMatrix:
    """Per-process cache of a case's exact closed-loop mode matrix.

    Every validation task of one worker shares a single
    :class:`RationalMatrix` per ``(case, mode)``; since the exact
    kernels memoize denominator-clearing on the (hashable) matrix,
    this also keeps :func:`repro.exact.kernel_cache_info` hitting
    across tasks instead of re-normalizing per validation.
    """
    case = case_by_name(case_name)
    return RationalMatrix.from_numpy(
        np.asarray(case.mode_matrix(mode), dtype=float)
    )


class Table1Task(Task):
    """One Table I cell: synthesize a candidate, validate it exactly."""

    def __init__(
        self, case_name, size, mode, method, backend,
        eq_smt_deadline, validator, sigfigs, keep_candidate=False,
        fallback=True,
    ):
        self.case_name = case_name
        self.size = size
        self.mode = mode
        self.method = method
        self.backend = backend
        self.eq_smt_deadline = eq_smt_deadline
        self.validator = validator
        self.sigfigs = sigfigs
        self.keep_candidate = keep_candidate
        self.fallback = fallback

    def key(self):
        return {
            "case": self.case_name, "mode": self.mode,
            "method": self.method, "backend": self.backend,
        }

    def run(self):
        case = case_by_name(self.case_name)
        a = case.mode_matrix(self.mode)
        try:
            candidate = synthesize(
                self.method, a, backend=self.backend or "ipm",
                deadline=(
                    self.eq_smt_deadline if self.method == "eq-smt" else None
                ),
            )
        except SynthesisTimeout:
            return self._failed("timeout")
        except (LmiInfeasibleError, ValueError):
            return self._failed("infeasible")
        report = validate_candidate(
            candidate, a, sigfigs=self.sigfigs, validator=self.validator,
            exact_a=_exact_mode_matrix(self.case_name, self.mode),
            fallback=self.fallback,
        )
        record = Table1Record(
            case=self.case_name, size=self.size, mode=self.mode,
            method=self.method, backend=self.backend,
            synth_time=candidate.synthesis_time, synth_status="ok",
            valid=report.valid, validation_time=report.total_time,
            sigfigs=self.sigfigs, degraded=report.degraded,
        )
        return record, (candidate if self.keep_candidate else None)

    def _failed(self, status):
        return Table1Record(
            case=self.case_name, size=self.size, mode=self.mode,
            method=self.method, backend=self.backend,
            synth_time=None, synth_status=status,
            valid=None, validation_time=None, sigfigs=self.sigfigs,
        ), None

    def on_timeout(self, elapsed):
        return self._failed("timeout")

    def on_error(self, message):
        return self._failed("error")

    def timing_detail(self, result):
        record, _candidate = result
        detail = {}
        if record.synth_time is not None:
            detail["synth_s"] = record.synth_time
        if record.validation_time is not None:
            detail["validate_s"] = record.validation_time
        if record.degraded:
            detail["degraded"] = record.degraded
        return detail


class RevalidateTask(Task):
    """Re-validate an existing candidate at a different rounding level."""

    def __init__(
        self, case_name, size, mode, method, backend,
        candidate, sigfigs, validator, fallback=True,
    ):
        self.case_name = case_name
        self.size = size
        self.mode = mode
        self.method = method
        self.backend = backend
        self.candidate = candidate
        self.sigfigs = sigfigs
        self.validator = validator
        self.fallback = fallback

    def key(self):
        return {
            "case": self.case_name, "mode": self.mode,
            "method": self.method, "backend": self.backend,
            "sigfigs": self.sigfigs,
        }

    def fingerprint_spec(self):
        fields = {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }
        fields["candidate"] = _candidate_fingerprint(fields["candidate"])
        return type(self).__name__, fields

    def run(self):
        case = case_by_name(self.case_name)
        a = case.mode_matrix(self.mode)
        report = validate_candidate(
            self.candidate, a, sigfigs=self.sigfigs, validator=self.validator,
            exact_a=_exact_mode_matrix(self.case_name, self.mode),
            fallback=self.fallback,
        )
        return self._record(
            report.valid, report.total_time, degraded=report.degraded
        )

    def _record(self, valid, validation_time, degraded=()):
        return Table1Record(
            case=self.case_name, size=self.size, mode=self.mode,
            method=self.method, backend=self.backend,
            synth_time=self.candidate.synthesis_time, synth_status="ok",
            valid=valid, validation_time=validation_time,
            sigfigs=self.sigfigs, degraded=list(degraded),
        )

    def on_timeout(self, elapsed):
        return self._record(None, None)

    def on_error(self, message):
        return self._record(None, None)

    def timing_detail(self, result):
        detail = {}
        if result.validation_time is not None:
            detail["validate_s"] = result.validation_time
        if result.degraded:
            detail["degraded"] = result.degraded
        return detail


class Figure3Task(Task):
    """Validate one shared candidate with one registered validator."""

    def __init__(
        self, case_name, size, mode, method, backend,
        candidate, validator, options, fallback=True,
    ):
        self.case_name = case_name
        self.size = size
        self.mode = mode
        self.method = method
        self.backend = backend
        self.candidate = candidate
        self.validator = validator
        self.options = options
        self.fallback = fallback

    def key(self):
        return {
            "case": self.case_name, "mode": self.mode,
            "method": self.method, "backend": self.backend,
            "validator": self.validator,
        }

    def fingerprint_spec(self):
        fields = {
            k: v for k, v in vars(self).items() if not k.startswith("_")
        }
        fields["candidate"] = _candidate_fingerprint(fields["candidate"])
        return type(self).__name__, fields

    def run(self):
        case = case_by_name(self.case_name)
        a = case.mode_matrix(self.mode)
        report = validate_candidate(
            self.candidate, a, validator=self.validator,
            exact_a=_exact_mode_matrix(self.case_name, self.mode),
            fallback=self.fallback,
            **self.options,
        )
        return Figure3Record(
            case=self.case_name, size=self.size, mode=self.mode,
            method=self.method, backend=self.backend,
            validator=self.validator,
            valid=report.valid,
            time=report.total_time,
            degraded=report.degraded,
        )

    def timing_detail(self, result):
        detail = {"validate_s": result.time}
        if result.degraded:
            detail["degraded"] = result.degraded
        return detail


@lru_cache(maxsize=64)
def _table2_context(case_name: str, mode: int):
    """Per-process cache of the Table II mode geometry (flow, switching
    halfspace, exact equilibrium, surface geometry)."""
    case = case_by_name(case_name)
    r = case.reference()
    from ..robust import surface_geometry

    system = case.switched_system(r)
    flow = system.modes[mode].flow
    halfspace = system.modes[mode].region.halfspaces[0]
    a_exact = RationalMatrix.from_numpy(flow.a)
    w_eq = solve_vector(a_exact, [-to_fraction(x) for x in flow.b.tolist()])
    w_eq_float = np.array([float(x) for x in w_eq])
    _, b_cl = closed_loop_matrices(case.plant, mode_gains(mode))
    geometry = surface_geometry(halfspace, flow)
    return case, flow, halfspace, w_eq, w_eq_float, b_cl, geometry, a_exact


class Table2Task(Task):
    """One Table II cell: synthesis, validation, robust region, radii."""

    def __init__(self, case_name, size, mode, method, backend,
                 sigfigs, validator, fallback=True):
        self.case_name = case_name
        self.size = size
        self.mode = mode
        self.method = method
        self.backend = backend
        self.sigfigs = sigfigs
        self.validator = validator
        self.fallback = fallback

    def key(self):
        return {
            "case": self.case_name, "mode": self.mode,
            "method": self.method, "backend": self.backend,
        }

    def _skipped(self, reason):
        return Table2Record(
            case=self.case_name, size=self.size, mode=self.mode,
            method=self.method, backend=self.backend,
            time=None, volume=None, log10_volume=None,
            epsilon=None, k=None, region_case=None,
            skipped_reason=reason,
        )

    def on_timeout(self, elapsed):
        return self._skipped("runner deadline exceeded")

    def on_error(self, message):
        return self._skipped("task error")

    def run(self):
        import time as _time

        from ..robust import (
            EpsilonInputs,
            epsilon_radius,
            log10_truncated_ellipsoid_volume,
            synthesize_robust_level,
            truncated_ellipsoid_volume,
        )

        _case, flow, halfspace, w_eq, w_eq_float, b_cl, geometry, a_exact = (
            _table2_context(self.case_name, self.mode)
        )
        try:
            candidate = synthesize(
                self.method, flow.a, backend=self.backend or "ipm"
            )
        except (LmiInfeasibleError, ValueError):
            return self._skipped("synthesis failed")
        report = validate_candidate(
            candidate, flow.a, sigfigs=self.sigfigs, validator=self.validator,
            exact_a=a_exact, fallback=self.fallback,
        )
        if report.valid is not True:
            # The paper leaves such cells empty (LMIalpha+/Mosek, size 18).
            return self._skipped("candidate not validated")
        base = dict(
            case=self.case_name, size=self.size, mode=self.mode,
            method=self.method, backend=self.backend,
        )

        def epsilon(k):
            inputs = EpsilonInputs(
                flow_a=flow.a, b_cl=b_cl, p=candidate.p,
                k=min(k, 1e300), w_eq=w_eq_float, geometry=geometry,
            )
            return epsilon_radius(inputs)

        start = _time.perf_counter()
        p_exact = candidate.exact_p(self.sigfigs)
        region = synthesize_robust_level(flow, halfspace, p_exact, w_eq=w_eq)
        elapsed = _time.perf_counter() - start
        if not region.bounded:
            return Table2Record(
                **base, time=elapsed, volume=float("inf"),
                log10_volume=float("inf"), epsilon=epsilon(float("inf")),
                k=float("inf"), region_case=region.case,
            )
        k_float = region.k_float()
        normal = halfspace.normal_float()
        volume = truncated_ellipsoid_volume(
            candidate.p, k_float, w_eq_float, normal, float(halfspace.offset)
        )
        log_volume = log10_truncated_ellipsoid_volume(
            candidate.p, k_float, w_eq_float, normal, float(halfspace.offset)
        )
        return Table2Record(
            **base, time=elapsed, volume=volume, log10_volume=log_volume,
            epsilon=epsilon(k_float), k=k_float, region_case=region.case,
        )

    def timing_detail(self, result):
        if result.time is None:
            return {}
        return {"region_s": result.time}


class PiecewiseTask(Task):
    """One piecewise synthesis+validation attempt (Sec. VI-B.2)."""

    def __init__(self, case_name, size, encoding, max_iterations,
                 max_boxes, conditions_scope, solver="hybrid",
                 oracle_batch=True, icp_backend="auto"):
        self.case_name = case_name
        self.size = size
        self.encoding = encoding
        self.max_iterations = max_iterations
        self.max_boxes = max_boxes
        self.conditions_scope = conditions_scope
        self.solver = solver
        self.oracle_batch = oracle_batch
        self.icp_backend = icp_backend

    def key(self):
        return {"case": self.case_name, "encoding": self.encoding}

    def run(self):
        case = case_by_name(self.case_name)
        system = case.switched_system(case.reference())
        candidate = synthesize_piecewise(
            system, encoding=self.encoding,
            max_iterations=self.max_iterations,
            solver=self.solver,
            oracle_batch=self.oracle_batch,
        )
        report = validate_piecewise(
            candidate,
            system,
            conditions_scope=self.conditions_scope,
            max_boxes=self.max_boxes,
            icp_backend=self.icp_backend,
        )
        return PiecewiseRecord(
            case=self.case_name,
            size=self.size,
            encoding=self.encoding,
            lmi_feasible=candidate.feasible,
            proved_infeasible=bool(candidate.info.get("proved_infeasible")),
            iterations=candidate.iterations,
            synth_time=candidate.synthesis_time,
            validation_valid=report.valid,
            failed_conditions=report.failed_conditions,
            validation_time=report.time,
            solver=self.solver,
            phases=dict(candidate.info.get("phases", {})),
        )

    def _aborted(self, reason, elapsed):
        return PiecewiseRecord(
            case=self.case_name, size=self.size, encoding=self.encoding,
            lmi_feasible=False, proved_infeasible=False, iterations=0,
            synth_time=elapsed, validation_valid=None,
            failed_conditions=[reason], validation_time=0.0,
            solver=self.solver,
        )

    def on_timeout(self, elapsed):
        return self._aborted("runner deadline exceeded", elapsed)

    def on_error(self, message):
        return self._aborted("task error", 0.0)

    def timing_detail(self, result):
        detail = {
            "synth_s": result.synth_time,
            "validate_s": result.validation_time,
        }
        # Per-phase synthesis timings (compile_s/oracle_s/polish_s) flow
        # into the timing artifact and journal records alongside the
        # aggregate synth_s.
        detail.update(result.phases)
        return detail

class CegisTask(Task):
    """One CEGIS campaign on a benchmark case at a reference regime.

    Pickles as plain scalars; the worker rebuilds the switched system
    from the case name and the regime's reference margin
    (:data:`repro.engine.REGIME_MARGINS`) and runs
    :func:`repro.lyapunov.cegis_piecewise`. The record carries the
    deterministic provenance digest, so journal fingerprints (and the
    CI smoke golden-diff) are stable across reruns.
    """

    def __init__(self, case_name, size, regime, synthesis="sampled",
                 snap="structured", max_rounds=40, max_iterations=30_000,
                 verify_max_boxes=20_000, refute=False, icp_backend="auto"):
        self.case_name = case_name
        self.size = size
        self.regime = regime
        self.synthesis = synthesis
        self.snap = snap
        self.max_rounds = max_rounds
        self.max_iterations = max_iterations
        self.verify_max_boxes = verify_max_boxes
        self.refute = refute
        self.icp_backend = icp_backend

    def key(self):
        return {
            "case": self.case_name, "regime": self.regime,
            "synthesis": self.synthesis, "snap": self.snap,
        }

    def run(self):
        from ..lyapunov import cegis_piecewise

        case = case_by_name(self.case_name)
        r = nominal_reference(
            case.plant, margin=REGIME_MARGINS[self.regime]
        )
        system = case.switched_system(r)
        outcome = cegis_piecewise(
            system,
            synthesis=self.synthesis,
            snap=self.snap,
            max_rounds=self.max_rounds,
            max_iterations=self.max_iterations,
            verify_max_boxes=self.verify_max_boxes,
            refute=self.refute,
            icp_backend=self.icp_backend,
        )
        last = outcome.rounds[-1] if outcome.rounds else None
        failed = []
        if last is not None and not outcome.validated:
            failed = [
                name for name, verdict in sorted(last.checks.items())
                if verdict is not True
            ]
        return CegisRecord(
            case=self.case_name,
            size=self.size,
            regime=self.regime,
            synthesis=self.synthesis,
            snap=self.snap,
            status=outcome.status,
            rounds=len(outcome.rounds),
            cuts=outcome.cut_count,
            validated=outcome.validated,
            proved_infeasible=outcome.status == "infeasible",
            synth_time=sum(r.synth_time for r in outcome.rounds),
            verify_time=sum(r.verify_time for r in outcome.rounds),
            refute_time=sum(r.refute_time for r in outcome.rounds),
            total_time=outcome.total_time,
            digest=outcome.digest(),
            failed_checks=failed,
        )

    def _aborted(self, reason, elapsed):
        return CegisRecord(
            case=self.case_name, size=self.size, regime=self.regime,
            synthesis=self.synthesis, snap=self.snap,
            status="aborted", rounds=0, cuts=0,
            validated=False, proved_infeasible=False,
            synth_time=elapsed, verify_time=0.0, refute_time=0.0,
            total_time=elapsed, digest="", failed_checks=[reason],
        )

    def on_timeout(self, elapsed):
        return self._aborted("runner deadline exceeded", elapsed)

    def on_error(self, message):
        return self._aborted(f"task error: {message}", 0.0)

    def timing_detail(self, result):
        return {
            "synth_s": result.synth_time,
            "verify_s": result.verify_time,
            "rounds": result.rounds,
            "cuts": result.cuts,
        }


class FuzzTask(Task):
    """One oracle-fuzz case: regenerate a spec'd system, run the battery.

    The task pickles as ``(kind, n, seed)`` plus the profile's plain-dict
    spec — the system itself is deterministically regenerated in the
    worker (:func:`repro.oracle.generate_system`), so nothing
    matrix-shaped crosses the pipe and the journal fingerprint is the
    spec itself.  The resulting :class:`~repro.oracle.FuzzRecord`
    deliberately carries no wall-clock fields, which is what makes two
    same-seed campaign journals byte-identical (the determinism test's
    contract).
    """

    def __init__(self, kind, n, seed, profile=None):
        self.kind = kind
        self.n = n
        self.seed = seed
        self.profile = dict(profile) if profile else None

    def key(self):
        return {"kind": self.kind, "n": self.n, "seed": self.seed}

    def _profile(self):
        if self.profile is None:
            return None
        from ..oracle import FuzzProfile

        return FuzzProfile(**{
            k: tuple(v) if isinstance(v, list) else v
            for k, v in self.profile.items()
        })

    def run(self):
        from ..oracle import (
            CEGIS_KINDS,
            check_cegis_scenario,
            check_system,
            generate_system,
        )

        if self.kind in CEGIS_KINDS:
            return check_cegis_scenario(self.kind, self.n, self.seed)
        system = generate_system(self.kind, self.n, self.seed)
        return check_system(system, self._profile())

    def _aborted(self, message):
        from ..oracle.records import FuzzRecord

        return FuzzRecord(
            kind=self.kind, n=self.n, seed=self.seed,
            stable=None, provenance="aborted",
            harness_errors=[message],
        )

    def on_timeout(self, elapsed):
        # No elapsed time in the record: FuzzRecords must stay
        # deterministic functions of the spec (see the class docstring).
        return self._aborted("runner deadline exceeded")

    def on_error(self, message):
        return self._aborted(f"task error: {message}")

    def timing_detail(self, result):
        detail = {"checks": result.checks}
        if result.disagreements:
            detail["disagreements"] = len(result.disagreements)
        if result.harness_errors:
            detail["harness_errors"] = len(result.harness_errors)
        return detail
