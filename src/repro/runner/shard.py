"""Fault-tolerant sharded campaign execution with heartbeat leases,
work-stealing and deterministic journal merge.

:func:`repro.runner.run_tasks` survives losing a *worker*; a
10⁵–10⁶-task envelope campaign must survive losing an entire *shard*
of workers. :func:`run_sharded` partitions a campaign by task
fingerprint hash into N shards, each executed by an independent
single-process shard runner (spawned subprocess) that

* journals every completed outcome to its **own per-shard journal**
  (same append-only fsync'd format — the data plane),
* rewrites a **heartbeat lease** file every ``heartbeat_s`` seconds
  (the control plane — see :mod:`repro.runner.telemetry`), and
* acknowledges completions to the supervisor over a pipe (progress
  only; results never cross the pipe — they flow through journals).

The supervisor declares a shard **dead** when its process exits or its
lease goes stale (``lease_ttl``) — the lease catches the "partitioned
but alive" case where the process is unreachable yet still running —
then harvests the dead shard's journal read-only
(:meth:`~repro.runner.Journal.load`), marks everything it had already
journaled as done, and **requeues** the genuinely incomplete
fingerprints onto the surviving shards. Because a shard can die
*after* journaling a task but *before* acknowledging it, a requeued
fingerprint may execute twice; per-shard journals merge with last-wins
dedup (:func:`repro.runner.journal.merge_journals`), so double
execution is harmless **by construction** — no lost tasks, no
duplicated results.

**Work-stealing** falls out of the same machinery: dispatch is
windowed (at most ``window`` tasks in flight per shard), so a shard
that drains its home queue steals from the tail of the most-backlogged
live shard — a straggler shard slows nothing but itself.

On completion the per-shard journals are merged and absorbed **byte
for byte** into the campaign's main journal, whose sorted-line SHA-256
digest (:func:`repro.runner.journal.journal_digest`) is therefore
invariant to shard count, shard deaths and steal order for
deterministic task payloads — the same guarantee ``--resume`` replay
already gives, lifted to the multi-shard case. If every shard dies,
the supervisor degrades to in-process execution of the remainder, the
same last-resort the process pool has.

Shard-level fault injection lives in
:class:`repro.runner.chaos.ShardChaosPolicy`; live progress rendering
in :mod:`repro.runner.telemetry` (``--watch``).
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
import time
from collections import deque
from multiprocessing.connection import wait as _wait_ready

from .core import (
    CampaignStats,
    RetryPolicy,
    TransientTaskError,
    _exc_message,
    _resolve_retry,
    run_tasks,
)
from .journal import Journal, merge_journals, task_fingerprint, _parse_line
from .telemetry import (
    lease_path,
    read_lease,
    render_dashboard,
    scan_campaign,
    shard_journal_path,
    write_lease,
)
from .timing import TaskTiming

__all__ = ["run_sharded", "resolve_shards", "shard_of"]

#: Seconds between supervisor scheduling/liveness passes.
_POLL_INTERVAL = 0.05


def resolve_shards(shards: int | None) -> int:
    """Shard-count resolution: explicit > ``REPRO_SHARDS`` env > 1.

    Mirrors :func:`repro.runner.resolve_jobs`'s ``REPRO_JOBS``
    precedent: an explicit ``shards`` argument (the ``--shards`` CLI
    flag) wins; with ``shards=None`` a ``REPRO_SHARDS`` environment
    variable, if set to a parseable integer, decides (malformed values
    are ignored); otherwise campaigns stay unsharded (1). Values below
    1 are clamped to 1.
    """
    if shards is None:
        env = os.environ.get("REPRO_SHARDS")
        if env is not None:
            try:
                shards = int(env)
            except ValueError:
                shards = None
    if shards is None:
        return 1
    return max(1, int(shards))


def shard_of(fingerprint: str, shards: int) -> int:
    """Home shard of a task fingerprint: stable hash partition.

    Content-derived (the fingerprint is already a salted SHA-256 hex
    digest), so the same task lands on the same home shard in every
    process on every run — which is what makes a resumed sharded
    campaign re-partition identically.
    """
    return int(fingerprint[:16], 16) % max(1, shards)


# ----------------------------------------------------------------------
# Shard-runner side (runs in the spawned subprocess)
# ----------------------------------------------------------------------

class _Heartbeat:
    """Background lease writer for one shard runner.

    The main thread mutates the counters under ``lock``; the heartbeat
    thread rewrites the lease atomically every ``interval`` seconds. A
    frozen heartbeat (chaos) stops rewriting but leaves the thread —
    and the shard — running, which is exactly the "lease expires
    without the process dying" failure the supervisor must catch.
    """

    def __init__(self, path, shard, interval):
        self.path = path
        self.interval = interval
        self.lock = threading.Lock()
        self.payload = {
            "shard": shard,
            "pid": os.getpid(),
            "state": "running",
            "done": 0,
            "assigned": 0,
            "retried": 0,
            "requeued": 0,
            "stolen": 0,
            "started": time.time(),
            "current_started": None,
        }
        self.frozen = False
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def start(self):
        self.write()  # one unconditional lease before chaos can freeze it
        self._thread.start()

    def _loop(self):
        while not self._stop.wait(self.interval):
            self.write()

    def update(self, **fields):
        with self.lock:
            self.payload.update(fields)

    def bump(self, **fields):
        with self.lock:
            for key, delta in fields.items():
                self.payload[key] = self.payload.get(key, 0) + delta

    def write(self):
        if self.frozen:
            return
        with self.lock:
            payload = dict(self.payload, ts=time.time())
        try:
            write_lease(self.path, payload)
        except OSError:
            pass  # a failed heartbeat must not kill the shard

    def freeze(self):
        self.frozen = True

    def stop(self, state="done"):
        self._stop.set()
        self.update(state=state, current_started=None)
        self.write()


def _execute(task, policy: RetryPolicy, token):
    """One task with local policy retries. Returns
    ``(status, result, wall_s, attempts, error)``."""
    attempts = 0
    wall = 0.0
    while True:
        attempts += 1
        try:
            task.on_attempt(attempts)
        except Exception:
            pass
        start = time.perf_counter()
        try:
            result = task.run()
        except TransientTaskError as exc:
            wall += time.perf_counter() - start
            if attempts <= policy.retries:
                time.sleep(policy.delay(attempts, token))
                continue
            message = _exc_message(exc)
            return (
                "error", task.on_error(message), wall, attempts,
                {"exc": message, "transient": True},
            )
        except Exception as exc:
            wall += time.perf_counter() - start
            message = _exc_message(exc)
            return (
                "error", task.on_error(message), wall, attempts,
                {"exc": message, "transient": False},
            )
        wall += time.perf_counter() - start
        return "ok", result, wall, attempts, None


def _tear_tail(journal: Journal, fingerprint: str, kind: str) -> None:
    """Leave a torn (newline-less) trailing record — what a crash in
    the middle of :meth:`Journal.record` leaves behind."""
    line = json.dumps(
        {"v": 1, "fp": fingerprint, "kind": kind, "status": "ok"}
    )
    journal._write(line[: max(4, len(line) // 2)].encode("utf-8"))


def _timing_detail(task, status, result) -> dict:
    if status not in ("ok", "fallback"):
        return {}
    try:
        return dict(task.timing_detail(result) or {})
    except Exception:
        return {}


def _shard_main(
    conn, shard, journal_path, lease_file, heartbeat_s, retry, chaos
):
    """Shard-runner process: execute dispatched tasks sequentially,
    journal locally, heartbeat, acknowledge.

    Protocol (supervisor -> shard): ``("task", index, task, flags)``
    dispatches one task (``flags`` marks steals/requeues for the
    lease counters); ``None`` shuts the shard down.
    Protocol (shard -> supervisor):
    ``(index, kind, fingerprint, status, wall_s, attempts, detail,
    error)`` with ``kind`` ``"done"`` (executed) or ``"replayed"``
    (already in this shard's journal — a resumed campaign).

    The journal write happens *before* the acknowledgement, so the set
    of journaled fingerprints is always a superset of the acknowledged
    ones — a shard that dies in between leaves a completed-but-unacked
    task the supervisor will requeue, and last-wins merge absorbs the
    double execution.
    """
    policy = _resolve_retry(retry)
    journal = Journal(journal_path, resume=True)
    beat = _Heartbeat(lease_file, shard, heartbeat_s)
    beat.start()
    accepted = 0
    straggler = (
        chaos is not None
        and chaos.straggler_shard == shard
        and chaos.straggler_delay_s > 0.0
    )
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            _tag, index, task, flags = message
            accepted += 1
            beat.bump(
                assigned=1,
                stolen=1 if flags.get("stolen") else 0,
                requeued=1 if flags.get("requeued") else 0,
            )
            kill_now = (
                chaos is not None
                and chaos.kill_shard == shard
                and accepted == chaos.kill_after
            )
            if straggler:
                time.sleep(chaos.straggler_delay_s)
            fingerprint = task_fingerprint(task)
            kind = type(task).__name__
            entry = journal.get(fingerprint)
            if entry is not None:
                reply = (
                    index, "replayed", fingerprint, entry.status,
                    0.0, entry.attempts, {}, entry.error,
                )
            else:
                if kill_now and chaos.kill_mode == "torn":
                    # Crash mid-write: torn trailing line, then die.
                    _tear_tail(journal, fingerprint, kind)
                    os._exit(31)
                beat.update(current_started=time.time())
                beat.write()
                status, result, wall, attempts, error = _execute(
                    task, policy, fingerprint
                )
                detail = _timing_detail(task, status, result)
                journal_error = False
                try:
                    if task.corrupt_journal_record():
                        journal.record_corrupt(fingerprint, kind)
                    else:
                        journal.record(
                            fingerprint, kind, status, result,
                            attempts=attempts, error=error,
                        )
                except Exception:
                    journal_error = True
                if kill_now:
                    # Journaled but never acknowledged: the supervisor
                    # requeues this fingerprint and the merge dedups it.
                    os._exit(31)
                beat.bump(done=1, retried=1 if attempts > 1 else 0)
                beat.update(current_started=None)
                if journal_error:
                    error = dict(error or {}, journal_error=True)
                reply = (
                    index, "done", fingerprint, status,
                    wall, attempts, detail, error,
                )
            if (
                chaos is not None
                and chaos.freeze_shard == shard
                and accepted >= max(1, chaos.freeze_after)
            ):
                beat.freeze()
            beat.write()
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            except Exception:
                # Unpicklable detail payload: degrade, stay alive.
                try:
                    conn.send(
                        (index, reply[1], fingerprint, reply[3],
                         reply[4], reply[5], {}, reply[7])
                    )
                except Exception:
                    break
    finally:
        beat.stop(state="done")
        journal.close()
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------

class _Shard:
    """Supervisor-side view of one shard runner."""

    __slots__ = (
        "index", "process", "conn", "journal_path", "lease_file",
        "queue", "inflight", "alive", "spawned_at",
    )

    def __init__(self, index, process, conn, journal_path, lease_file):
        self.index = index
        self.process = process
        self.conn = conn
        self.journal_path = journal_path
        self.lease_file = lease_file
        self.queue: deque = deque()  # undispatched home-task indices
        self.inflight: dict = {}  # index -> dispatch epoch
        self.alive = process is not None
        self.spawned_at = time.time()

    def stop(self):
        if self.process is None:
            return
        try:
            if self.process.is_alive():
                self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:
            pass


class _Supervisor:
    """One sharded campaign: dispatch, liveness, steal, merge."""

    def __init__(
        self, tasks, shards, journal, retry, stats, collect,
        task_deadline, heartbeat_s, lease_ttl, window, chaos,
        watch, watch_interval, max_requeues,
    ):
        self.tasks = tasks
        self.n = shards
        self.journal = journal  # the main Journal (never None here)
        self.policy = _resolve_retry(retry)
        self.stats = stats
        self.collect = collect
        self.task_deadline = task_deadline
        self.heartbeat_s = heartbeat_s
        self.lease_ttl = lease_ttl
        self.window = window
        self.chaos = chaos
        self.watch = watch
        self.watch_interval = watch_interval
        self.max_requeues = max_requeues

        self.base = self.journal.path
        self.fingerprints = [task_fingerprint(t) for t in tasks]
        self.done: dict[int, str] = {}  # index -> fingerprint
        self.requeue_counts: dict[int, int] = {}
        self.shards: list[_Shard] = []
        self.local_journal: Journal | None = None
        self.started = time.time()
        self._last_watch = 0.0

    # -- lifecycle ----------------------------------------------------

    def run(self) -> list:
        self.stats.total += len(self.tasks)
        self._premerge_leftovers()
        todo = self._replay()
        if todo:
            self._spawn(min(self.n, len(todo)) or 1)
            self._partition(todo)
            self._loop()
        self._shutdown()
        self._absorb()
        results = self._results()
        self._cleanup()
        return results

    def _premerge_leftovers(self):
        """Fold shard/local journals left by a crashed prior run into
        the main journal, so supervisor replay sees them."""
        leftovers = self._shard_files()
        if not leftovers:
            return
        for fingerprint, raw in merge_journals(leftovers).items():
            if fingerprint not in self.journal:
                self.journal.absorb_line(raw)

    def _shard_files(self) -> list[pathlib.Path]:
        pattern = self.base.name + ".shard*"
        files = [
            p for p in self.base.parent.glob(pattern)
            if not p.name.endswith(".lease")
            and ".lease.tmp" not in p.name
            and ".tmp" not in p.suffix
        ]
        local = self.base.with_name(self.base.name + ".local")
        if local.exists():
            files.append(local)
        return files

    def _replay(self) -> list[int]:
        todo = []
        for index, task in enumerate(self.tasks):
            entry = self.journal.get(self.fingerprints[index])
            if entry is None:
                todo.append(index)
                continue
            self.done[index] = self.fingerprints[index]
            self.stats.replayed += 1
            self._emit(
                task, "replayed", 0.0, "journal",
                attempts=0, error=entry.error, entry=entry,
            )
        return todo

    def _spawn(self, count):
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()
        for shard in range(count):
            journal_path = shard_journal_path(self.base, shard)
            lease_file = lease_path(self.base, shard)
            try:
                parent_end, child_end = context.Pipe(duplex=True)
                process = context.Process(
                    target=_shard_main,
                    args=(
                        child_end, shard, str(journal_path),
                        str(lease_file), self.heartbeat_s,
                        self.policy, self.chaos,
                    ),
                    daemon=True,
                )
                process.start()
                child_end.close()
            except (OSError, ValueError):
                self.shards.append(
                    _Shard(shard, None, None, journal_path, lease_file)
                )
                continue
            self.shards.append(
                _Shard(shard, process, parent_end, journal_path, lease_file)
            )

    def _partition(self, todo):
        live = [s for s in self.shards if s.alive]
        for index in todo:
            home = self.shards[shard_of(self.fingerprints[index], self.n)]
            if not home.alive:
                home = (
                    live[shard_of(self.fingerprints[index], len(live))]
                    if live else home
                )
            home.queue.append(index)

    # -- main loop ----------------------------------------------------

    def _incomplete(self) -> bool:
        return len(self.done) < len(self.tasks)

    def _loop(self):
        while self._incomplete():
            live = [s for s in self.shards if s.alive]
            if not live:
                self._run_rest_locally()
                return
            self._dispatch(live)
            self._collect_acks(live)
            self._check_liveness()
            self._maybe_watch()

    def _dispatch(self, live):
        for shard in live:
            while len(shard.inflight) < self.window:
                index, flags = self._next_for(shard, live)
                if index is None:
                    break
                try:
                    shard.conn.send(
                        ("task", index, self.tasks[index], flags)
                    )
                except Exception:
                    shard.queue.appendleft(index)
                    self._declare_dead(shard, "send failed")
                    break
                shard.inflight[index] = time.time()

    def _next_for(self, shard, live):
        """The next index for ``shard``: its own queue, else a steal
        from the tail of the most-backlogged other live shard."""
        while shard.queue:
            index = shard.queue.popleft()
            if index not in self.done:
                return index, {}
        victim = None
        for other in live:
            if other is shard or not other.queue:
                continue
            if victim is None or len(other.queue) > len(victim.queue):
                victim = other
        while victim is not None and victim.queue:
            index = victim.queue.pop()  # steal from the cold tail
            if index not in self.done:
                self.stats.stolen_tasks += 1
                return index, {"stolen": True}
        return None, {}

    def _collect_acks(self, live):
        busy = [s for s in live if s.inflight]
        if not busy:
            time.sleep(_POLL_INTERVAL / 5)
            return
        ready = _wait_ready(
            [s.conn for s in busy], timeout=_POLL_INTERVAL
        )
        for shard in busy:
            if shard.conn not in ready:
                continue
            while True:
                try:
                    if not shard.conn.poll():
                        break
                    reply = shard.conn.recv()
                except (EOFError, OSError):
                    break
                self._ack(shard, reply)

    def _ack(self, shard, reply):
        (index, kind, fingerprint, status, wall, attempts, detail,
         error) = reply
        shard.inflight.pop(index, None)
        if index in self.done:
            return  # double execution after a requeue: merge dedups it
        self.done[index] = fingerprint
        worker = f"shard{shard.index}:{shard.process.pid}"
        if kind == "replayed":
            self.stats.replayed += 1
            self._emit(
                self.tasks[index], "replayed", 0.0, worker,
                attempts=0, error=error,
            )
            return
        self.stats.executed += 1
        local_retries = max(0, attempts - 1)
        if local_retries:
            self.stats.retried_tasks += 1
            self.stats.retry_attempts += local_retries
        if status == "error":
            self.stats.errors += 1
        elif status == "timeout":
            self.stats.timeouts += 1
        if detail.get("degraded"):
            self.stats.degraded += 1
        if (error or {}).get("journal_error"):
            self.stats.journal_errors += 1
        self._emit(
            self.tasks[index], status, wall, worker,
            attempts=attempts, error=error, detail=detail,
            requeues=self.requeue_counts.get(index, 0),
        )

    # -- liveness and requeue -----------------------------------------

    def _check_liveness(self):
        now = time.time()
        for shard in self.shards:
            if not shard.alive:
                continue
            reason = None
            if not shard.process.is_alive():
                reason = "process exited"
            else:
                lease = read_lease(shard.lease_file)
                if lease is None:
                    if now - shard.spawned_at > 2 * self.lease_ttl:
                        reason = "no lease"
                elif now - float(lease["ts"]) > self.lease_ttl:
                    reason = "lease expired"
                elif (
                    self.task_deadline is not None
                    and lease.get("current_started") is not None
                    and now - float(lease["current_started"])
                    > self.task_deadline
                ):
                    reason = "task deadline exceeded"
            if reason is not None:
                self._declare_dead(shard, reason)

    def _declare_dead(self, shard, reason):
        """Kill, harvest the journal, requeue incomplete fingerprints."""
        shard.alive = False
        if shard.process is not None:
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=2.0)
            if shard.process.is_alive():
                shard.process.kill()
                shard.process.join(timeout=2.0)
            try:
                shard.conn.close()
            except OSError:
                pass
        # Harvest: anything the dead shard journaled is done, even if
        # the acknowledgement never arrived.
        harvested = (
            Journal.load(shard.journal_path)
            if shard.journal_path.exists() else None
        )
        incomplete = []
        for index in list(shard.inflight):
            shard.inflight.pop(index)
            if index in self.done:
                continue
            fingerprint = self.fingerprints[index]
            entry = (
                harvested.get(fingerprint) if harvested is not None
                else None
            )
            if entry is not None:
                self.done[index] = fingerprint
                self.stats.executed += 1
                if entry.status == "error":
                    self.stats.errors += 1
                elif entry.status == "timeout":
                    self.stats.timeouts += 1
                self._emit(
                    self.tasks[index], entry.status, 0.0,
                    f"shard{shard.index}", attempts=entry.attempts,
                    error=entry.error, entry=entry,
                )
            else:
                incomplete.append(index)
        live = [s for s in self.shards if s.alive]
        backlog = list(shard.queue)
        shard.queue.clear()
        for position, index in enumerate(incomplete):
            count = self.requeue_counts.get(index, 0) + 1
            self.requeue_counts[index] = count
            if count > self.max_requeues:
                # A task that kills every shard it lands on: finish it
                # locally (once) instead of poisoning the fleet.
                self._finish_locally(
                    index, f"shard requeue limit ({reason})"
                )
                continue
            self.stats.requeued_tasks += 1
            self.stats.requeue_attempts += 1
            if live:
                live[position % len(live)].queue.append(index)
        if live:
            for position, index in enumerate(backlog):
                if index not in self.done:
                    live[position % len(live)].queue.append(index)
        # With no survivors the backlog and requeues fall through to
        # the main loop's in-process last resort (_run_rest_locally).

    def _finish_locally(self, index, reason):
        task = self.tasks[index]
        status, result, wall, attempts, error = _execute(
            task, self.policy, self.fingerprints[index]
        )
        self._journal_locally(index, status, result, attempts, error)
        self.done[index] = self.fingerprints[index]
        self.stats.executed += 1
        if status == "error":
            self.stats.errors += 1
        self._emit(
            task, status, wall, "local", attempts=attempts, error=error,
            detail=_timing_detail(task, status, result),
            requeues=self.requeue_counts.get(index, 0),
        )

    def _journal_locally(self, index, status, result, attempts, error):
        if self.local_journal is None:
            self.local_journal = Journal(
                self.base.with_name(self.base.name + ".local"),
                resume=True,
            )
        try:
            self.local_journal.record(
                self.fingerprints[index], type(self.tasks[index]).__name__,
                status, result, attempts=attempts, error=error,
            )
        except Exception:
            self.stats.journal_errors += 1

    def _run_rest_locally(self):
        """Every shard is gone: degrade to in-process execution."""
        for index in range(len(self.tasks)):
            if index not in self.done:
                self._finish_locally(index, "all shards dead")

    # -- progress -----------------------------------------------------

    def _maybe_watch(self):
        if not self.watch:
            return
        now = time.time()
        if now - self._last_watch < self.watch_interval:
            return
        self._last_watch = now
        text = render_dashboard(
            scan_campaign(self.base, shards=len(self.shards), now=now),
            total=len(self.tasks) - self.stats.replayed,
            elapsed_s=now - self.started,
            lease_ttl=self.lease_ttl,
        )
        if callable(self.watch):
            self.watch(text)
        else:
            import sys

            print(text, file=sys.stderr, flush=True)

    def _emit(
        self, task, status, wall, worker, attempts, error,
        detail=None, requeues=0, entry=None,
    ):
        if self.collect is None:
            return
        if detail is None:
            detail = (
                _timing_detail(task, status, entry.result)
                if entry is not None else {}
            )
        self.collect.record(
            TaskTiming(
                key=task.key(), status=status, wall_s=wall,
                worker=str(worker), detail=detail,
                attempts=attempts, error=error, requeues=requeues,
            )
        )

    # -- merge and teardown -------------------------------------------

    def _shutdown(self):
        for shard in self.shards:
            if shard.alive:
                shard.stop()
                shard.alive = False

    def _absorb(self):
        for fingerprint, raw in sorted(
            merge_journals(self._shard_files()).items()
        ):
            if fingerprint not in self.journal:
                self.journal.absorb_line(raw)

    def _results(self) -> list:
        results = []
        for index, task in enumerate(self.tasks):
            entry = self.journal.get(self.fingerprints[index])
            if entry is None:
                # Hole of last resort (e.g. chaos tore the only record
                # of this task): run it here, then it is journaled.
                status, result, wall, attempts, error = _execute(
                    task, self.policy, self.fingerprints[index]
                )
                if index not in self.done:
                    self.stats.executed += 1
                    if status == "error":
                        self.stats.errors += 1
                self.done[index] = self.fingerprints[index]
                self._emit(
                    task, status, wall, "local", attempts=attempts,
                    error=error,
                    detail=_timing_detail(task, status, result),
                )
                try:
                    self.journal.record(
                        self.fingerprints[index], type(task).__name__,
                        status, result, attempts=attempts, error=error,
                    )
                except Exception:
                    self.stats.journal_errors += 1
                results.append(result)
                continue
            results.append(entry.result)
        return results

    def _cleanup(self):
        if self.local_journal is not None:
            self.local_journal.close()
        # Everything is absorbed into the fsync'd main journal; the
        # per-shard files are redundant now, and leaving them would
        # leak stale results into a later resume=False campaign at the
        # same path.
        for path in self._shard_files():
            try:
                path.unlink()
            except OSError:
                pass
        for shard in self.shards:
            try:
                shard.lease_file.unlink()
            except OSError:
                pass


def run_sharded(
    tasks,
    shards: int | None = None,
    journal=None,
    retry=None,
    stats: CampaignStats | None = None,
    collect=None,
    task_deadline: float | None = None,
    heartbeat_s: float = 0.5,
    lease_ttl: float = 10.0,
    window: int = 2,
    chaos=None,
    watch=None,
    watch_interval: float = 2.0,
    max_requeues: int = 3,
    jobs: int | None = 1,
) -> list:
    """Run a campaign across fault-tolerant shards; results in
    submission order.

    ``shards`` resolves via :func:`resolve_shards` (explicit >
    ``REPRO_SHARDS`` > 1); a resolved count of 1 delegates to
    :func:`repro.runner.run_tasks` with ``jobs`` workers — sharding is
    strictly additive. ``journal`` is the campaign's main
    :class:`~repro.runner.Journal` (or a path opened ``resume=True``,
    or ``None`` for a throwaway campaign journaled in a temp
    directory); per-shard journals and heartbeat leases live next to
    it (``<base>.shardK`` / ``<base>.shardK.lease``) and are absorbed
    into it — byte for byte — when the campaign completes. ``chaos``
    is a :class:`~repro.runner.ShardChaosPolicy`; ``watch`` enables
    the live dashboard (``True`` = stderr, or a callable receiving the
    rendered text every ``watch_interval`` seconds). ``task_deadline``
    arms the supervisor's per-task kill: a shard whose lease shows one
    task in flight longer than the deadline is declared dead and its
    work requeued. A fingerprint requeued more than ``max_requeues``
    times is finished in-process instead of poisoning the fleet.
    """
    tasks = list(tasks)
    if stats is None:
        stats = CampaignStats()
    count = resolve_shards(shards)
    if count <= 1 or len(tasks) <= 1:
        opened = None
        if journal is not None and not isinstance(journal, Journal):
            journal = opened = Journal(journal, resume=True)
        try:
            return run_tasks(
                tasks, jobs=jobs, task_deadline=task_deadline,
                collect=collect, journal=journal, retry=retry, stats=stats,
            )
        finally:
            if opened is not None:
                opened.close()
    tempdir = None
    own_journal = False
    if journal is None:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-shard-")
        journal = Journal(
            pathlib.Path(tempdir.name) / "campaign.jsonl", fsync=False
        )
        own_journal = True
    elif not isinstance(journal, Journal):
        journal = Journal(journal, resume=True)
        own_journal = True
    try:
        supervisor = _Supervisor(
            tasks, count, journal, retry, stats, collect,
            task_deadline, heartbeat_s, lease_ttl, max(1, window), chaos,
            watch, watch_interval, max_requeues,
        )
        return supervisor.run()
    finally:
        if own_journal:
            journal.close()
        if tempdir is not None:
            tempdir.cleanup()
