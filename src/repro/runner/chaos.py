"""Seeded, deterministic fault injection for the runner.

The resilience invariants — resume skips completed work, transient
failures are retried, permanent ones are recorded once, no task is lost
or duplicated — are worthless unless something actually exercises them.
:class:`ChaosTask` wraps any :class:`~repro.runner.Task` and, at
configured rates, makes it

* raise a *transient* :class:`ChaosError` (retried by the policy),
* raise a *permanent* ``ChaosPermanentError`` (recorded once),
* hang past the runner deadline (killed, then retried),
* kill its worker process outright (``os._exit``), or
* tear its own journal record (a truncated line, as a crash mid-write
  would leave).

Every draw is derived from ``sha256(seed, fingerprint, attempt, kind)``
— no global RNG state — so a given (seed, task, attempt) always fails
the same way regardless of worker scheduling, process boundaries, or
how many other tasks run: chaos campaigns are exactly reproducible, and
a *retried* attempt draws fresh (otherwise an injected fault would
repeat forever and retries could never succeed).

The wrapper delegates fingerprints, keys, failure hooks and timing
detail to the wrapped task, so a chaos campaign journals and resumes
exactly like a clean one.

:class:`ShardChaosPolicy` extends the harness one failure domain up:
deterministic faults against whole shards of a sharded campaign
(:mod:`repro.runner.shard`) — hard-kill mid-task, a lease that expires
without the process dying, a torn per-shard journal tail, a straggler
shard — the scenarios the shard supervisor's requeue/steal/merge
machinery must survive without losing or duplicating work.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

from .core import Task, TransientTaskError
from .journal import task_fingerprint

__all__ = [
    "ChaosError",
    "ChaosPermanentError",
    "ChaosPolicy",
    "ChaosTask",
    "ShardChaosPolicy",
    "inject",
]


class ChaosError(TransientTaskError):
    """Injected *transient* fault (classified retryable by the runner)."""


class ChaosPermanentError(ValueError):
    """Injected *permanent* (domain-shaped) fault: recorded, not retried."""


@dataclass(frozen=True)
class ChaosPolicy:
    """Injection rates (each an independent probability in ``[0, 1]``).

    Faults are checked in the order kill → hang → transient raise →
    permanent raise, so with overlapping draws the most violent fault
    wins. ``hang_s`` should comfortably exceed the runner's
    ``task_deadline``; ``corrupt_rate`` tears the task's journal record
    *after* a successful run (keyed by fingerprint only, not attempt:
    the write happens once per completed task).

    ``kill_after_s`` delays the injected kill until *after* the task has
    started running — the worker dies mid-request with partial work
    done, the fault the service's warm pool must absorb (retry on a
    fresh warm worker, no lost or duplicated certificate). With the
    default ``0.0`` the kill fires before the inner task starts.
    ``kill_first_attempts`` makes kills deterministic instead of drawn:
    a positive value kills exactly the first that-many attempts of
    every task and then lets retries succeed — the shape chaos tests
    need to assert "died mid-request, then completed on a fresh
    worker" without tuning probabilities.
    """

    seed: int = 0
    raise_rate: float = 0.0
    permanent_rate: float = 0.0
    hang_rate: float = 0.0
    kill_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_s: float = 3600.0
    kill_after_s: float = 0.0
    kill_first_attempts: int = 0


@dataclass(frozen=True)
class ShardChaosPolicy:
    """Deterministic shard-level faults for sharded campaigns.

    Where :class:`ChaosPolicy` fails individual tasks/workers, this
    policy fails whole *shards* of a :func:`repro.runner.shard.
    run_sharded` campaign — the failure domain the shard supervisor
    exists to absorb. All faults are deterministic (indexed by shard
    number and task ordinal, no RNG), so a chaosed campaign is exactly
    reproducible:

    * ``kill_shard``/``kill_after`` — shard ``kill_shard`` hard-exits
      (``os._exit``) while processing its ``kill_after``-th accepted
      task. With ``kill_mode="exit"`` it dies *after* journaling the
      task but before acknowledging it — the journaled-but-unacked
      window that forces the supervisor to requeue an already-completed
      fingerprint and proves double execution harmless (last-wins
      merge). With ``kill_mode="torn"`` it instead tears its journal
      tail (a truncated, newline-less record — what a crash mid-write
      leaves) and then dies, so the merge must skip the torn line and
      the supervisor must re-run that task.
    * ``freeze_shard``/``freeze_after`` — shard ``freeze_shard`` stops
      heartbeating after completing ``freeze_after`` tasks but keeps
      running: its lease expires without its process exiting, the
      "partitioned but alive" failure. The supervisor must declare it
      dead on lease expiry alone.
    * ``straggler_shard``/``straggler_delay_s`` — shard
      ``straggler_shard`` sleeps ``straggler_delay_s`` before every
      task (a 10x-slowdown straggler at the right delay). The
      supervisor's work-stealing must drain its backlog onto the
      healthy shards instead of letting it serialize the campaign.
    """

    kill_shard: int | None = None
    kill_after: int = 1
    kill_mode: str = "exit"  # "exit" | "torn"
    freeze_shard: int | None = None
    freeze_after: int = 0
    straggler_shard: int | None = None
    straggler_delay_s: float = 0.0

    @classmethod
    def parse(cls, spec: str) -> "ShardChaosPolicy":
        """Parse the compact CLI form, e.g. ``kill:1@10`` or
        ``torn:0@3,freeze:2@5,straggle:3@0.05`` (``fault:shard@when``,
        comma-separated)."""
        fields: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                fault, rest = part.split(":", 1)
                shard, when = rest.split("@", 1)
                shard = int(shard)
            except ValueError:
                raise ValueError(
                    f"bad shard-chaos spec {part!r}; "
                    "expected fault:shard@when"
                )
            if fault in ("kill", "torn"):
                fields.update(
                    kill_shard=shard, kill_after=int(when), kill_mode=(
                        "torn" if fault == "torn" else "exit"
                    ),
                )
            elif fault == "freeze":
                fields.update(freeze_shard=shard, freeze_after=int(when))
            elif fault in ("straggle", "straggler"):
                fields.update(
                    straggler_shard=shard, straggler_delay_s=float(when)
                )
            else:
                raise ValueError(
                    f"unknown shard fault {fault!r}; "
                    "known: kill, torn, freeze, straggle"
                )
        return cls(**fields)


class ChaosTask(Task):
    """A :class:`~repro.runner.Task` wrapped with deterministic faults."""

    def __init__(self, inner: Task, policy: ChaosPolicy):
        self.inner = inner
        self.policy = policy
        self.attempt = 1
        self.parent_pid = os.getpid()

    # -- delegation (a chaos campaign must journal like a clean one) ----

    def fingerprint_spec(self):
        return self.inner.fingerprint_spec()

    def key(self):
        return self.inner.key()

    def on_timeout(self, elapsed):
        return self.inner.on_timeout(elapsed)

    def on_error(self, message):
        return self.inner.on_error(message)

    def timing_detail(self, result):
        return self.inner.timing_detail(result)

    # -- fault injection -----------------------------------------------

    def on_attempt(self, attempt: int) -> None:
        self.attempt = attempt
        self.inner.on_attempt(attempt)

    def _draw(self, kind: str, per_attempt: bool = True) -> float:
        """Uniform in ``[0, 1)`` from (seed, fingerprint, attempt, kind)."""
        attempt = self.attempt if per_attempt else 0
        token = (
            f"{self.policy.seed}:{task_fingerprint(self.inner)}"
            f":{attempt}:{kind}"
        )
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def run(self):
        kill = (
            self.attempt <= self.policy.kill_first_attempts
            or self._draw("kill") < self.policy.kill_rate
        )
        if kill:
            if os.getpid() != self.parent_pid:
                if self.policy.kill_after_s > 0.0:
                    # Die *mid-request*: the worker has accepted the
                    # task and burned wall-clock before vanishing.
                    time.sleep(self.policy.kill_after_s)
                os._exit(23)  # a worker death the parent must survive
            # In-process there is no worker to kill; degrade to a
            # transient fault so jobs=1 chaos runs stay meaningful.
            raise ChaosError("injected worker kill (in-process)")
        if self._draw("hang") < self.policy.hang_rate:
            time.sleep(self.policy.hang_s)
        if self._draw("raise") < self.policy.raise_rate:
            raise ChaosError("injected transient fault")
        if self._draw("permanent") < self.policy.permanent_rate:
            raise ChaosPermanentError("injected permanent fault")
        return self.inner.run()

    def corrupt_journal_record(self) -> bool:
        return self._draw("corrupt", per_attempt=False) < (
            self.policy.corrupt_rate
        )


def inject(tasks, policy: ChaosPolicy) -> list[ChaosTask]:
    """Wrap every task with the same chaos policy."""
    return [ChaosTask(task, policy) for task in tasks]
