"""Persistent warm-worker pool (the service's execution layer).

:func:`repro.runner.run_tasks` spins its pool up per campaign and tears
it down after; a serving layer cannot afford that. :class:`WarmPool`
keeps the same shared-nothing workers (:func:`repro.runner.core._spawn_worker`
/ ``_worker_loop`` — the identical ``(index, task) -> (index, status,
payload)`` pipe protocol) resident across requests:

* every fresh worker runs a **warm-up task** before it takes requests,
  precompiling the svec bases, the Lyapunov coefficient tensors and
  (optionally) the exact closed-loop mode matrices of named benchmark
  cases — the per-process ``lru_cache``\\ s that dominate cold-request
  latency;
* a dispatcher thread multiplexes submissions onto idle workers and
  enforces **per-request deadlines** with the runner's semantics: the
  worker is terminated, a fresh (re-warmed) worker replaces it, and
  the request retries under the :class:`repro.runner.RetryPolicy`
  until its attempts are exhausted;
* a worker that **dies mid-request** (segfault, ``os._exit``, chaos
  kill) is detected the same way the runner detects it — reply pipe
  readable or process dead without a reply — and the request retries
  on a fresh warm worker, with every attempt's worker pid recorded in
  the outcome's provenance.

Futures resolve to a :class:`PoolOutcome` — ``(result, attempts,
workers)`` — so callers (the certification service) can attach
execution provenance without the pool knowing anything about
certificates.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_ready

from ..runner import RetryPolicy, Task
from ..runner.core import _POLL_INTERVAL, _spawn_worker

__all__ = ["WarmPool", "PoolOutcome", "PoolDeadlineError", "WarmupTask"]


class PoolDeadlineError(TimeoutError):
    """A request exceeded its deadline on every allowed attempt."""


@dataclass
class PoolOutcome:
    """What a pool future resolves to: the task result + provenance."""

    result: object
    attempts: int
    workers: list = field(default_factory=list)


class WarmupTask(Task):
    """Pre-populate a worker's per-process caches before it serves.

    ``sizes`` runs :func:`repro.sdp.prewarm_solver` per size — svec
    basis tensors, the Lyapunov coefficient tensor of a stable probe
    matrix, and the batched screen's first-call LAPACK dispatch;
    ``cases`` warms the exact closed-loop mode matrices of named
    benchmark cases (:func:`repro.runner.tasks._exact_mode_matrix`),
    the cost that dominates cold exact validation.
    """

    def __init__(self, sizes=(), cases=()):
        self.sizes = list(sizes)
        self.cases = list(cases)

    def run(self):
        import os

        from ..sdp import prewarm_solver

        for n in self.sizes:
            prewarm_solver(n)
        if self.cases:
            from ..engine import MODES
            from ..runner.tasks import _exact_mode_matrix

            for case_name in self.cases:
                for mode in MODES:
                    _exact_mode_matrix(case_name, mode)
        return os.getpid()


class _Request:
    __slots__ = ("task", "deadline", "future", "attempts", "workers",
                 "warmup")

    def __init__(self, task, deadline, future, warmup=False):
        self.task = task
        self.deadline = deadline
        self.future = future
        self.attempts = 0
        self.workers: list = []
        self.warmup = warmup


class WarmPool:
    """A persistent pool of pre-warmed worker processes.

    ``jobs=None`` resolves via :func:`repro.runner.resolve_jobs`
    (honouring ``REPRO_JOBS``); ``retry`` defaults to one retry so a
    single worker death never surfaces to the caller. ``warm_sizes`` /
    ``warm_cases`` configure the :class:`WarmupTask` each fresh worker
    runs before serving. The pool starts lazily on first
    :meth:`submit` and must be :meth:`close`\\ d (or used as a context
    manager).
    """

    def __init__(
        self,
        jobs: int | None = None,
        retry: RetryPolicy | int | None = 1,
        warm_sizes=(),
        warm_cases=(),
    ):
        from ..runner.core import _resolve_retry, resolve_jobs

        self.jobs = resolve_jobs(jobs)
        self.policy = _resolve_retry(retry)
        self.warm_sizes = tuple(warm_sizes)
        self.warm_cases = tuple(warm_cases)
        self._inbox: queue.Queue = queue.Queue()
        self._shutdown = threading.Event()
        self._started = False
        self._start_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:
            self._context = multiprocessing.get_context()
        self.tasks_done = 0
        self.worker_deaths = 0
        self.deadline_kills = 0
        self.respawns = 0
        self.inline_fallbacks = 0

    # -- public API ----------------------------------------------------

    def submit(self, task: Task, deadline: float | None = None):
        """Queue ``task``; returns a future resolving to a
        :class:`PoolOutcome` (or raising on exhausted retries)."""
        from concurrent.futures import Future

        if self._shutdown.is_set():
            raise RuntimeError("pool is closed")
        self._ensure_started()
        request = _Request(task, deadline, Future())
        self._inbox.put(request)
        return request.future

    def counters(self) -> dict:
        return {
            "jobs": self.jobs,
            "tasks_done": self.tasks_done,
            "worker_deaths": self.worker_deaths,
            "deadline_kills": self.deadline_kills,
            "respawns": self.respawns,
            "inline_fallbacks": self.inline_fallbacks,
        }

    def close(self) -> None:
        if not self._started or self._shutdown.is_set():
            self._shutdown.set()
            return
        self._shutdown.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- dispatcher ----------------------------------------------------

    def _ensure_started(self) -> None:
        with self._start_lock:
            if self._started:
                return
            self._started = True
            self._thread = threading.Thread(
                target=self._loop, name="warm-pool-dispatcher", daemon=True
            )
            self._thread.start()

    def _spawn_warm(self):
        """A fresh worker with its warm-up request already in flight."""
        worker = _spawn_worker(self._context)
        if self.warm_sizes or self.warm_cases:
            warmup = _Request(
                WarmupTask(self.warm_sizes, self.warm_cases),
                deadline=None, future=None, warmup=True,
            )
            try:
                worker.connection.send((0, warmup.task))
            except Exception:
                return worker  # warm-up is best-effort
            worker.index, worker.task = 0, warmup
            worker.started = time.monotonic()
        return worker

    def _loop(self) -> None:
        workers = []
        pending: deque[_Request] = deque()
        try:
            for _ in range(self.jobs):
                try:
                    workers.append(self._spawn_warm())
                except (OSError, ValueError):
                    break
            while True:
                self._drain_inbox(pending)
                if (
                    self._shutdown.is_set()
                    and not pending
                    and not any(w.busy for w in workers)
                    and self._inbox.empty()
                ):
                    break
                if not workers:
                    # Pool unusable: degrade to in-thread execution so
                    # submissions still complete.
                    while pending:
                        self._run_inline(pending.popleft())
                    if self._shutdown.is_set() and self._inbox.empty():
                        break
                    self._drain_inbox(pending, block=True)
                    continue
                for worker in workers:
                    if not worker.busy and pending:
                        self._dispatch(worker, pending)
                busy = [w for w in workers if w.busy]
                if not busy:
                    self._drain_inbox(pending, block=True)
                    continue
                ready = _wait_ready(
                    [w.connection for w in busy], timeout=_POLL_INTERVAL
                )
                now = time.monotonic()
                for worker in busy:
                    if worker.connection in ready:
                        if not self._collect(worker, pending):
                            # Ready but unreadable: the worker died (or
                            # its pipe tore) mid-request.
                            self._on_death(worker, pending)
                            workers = self._replace(
                                workers, worker, force=True
                            )
                    elif not worker.process.is_alive():
                        if not self._collect(worker, pending):
                            self._on_death(worker, pending)
                        workers = self._replace(workers, worker)
                    elif self._overdue(worker, now):
                        self._on_deadline(worker, now, pending)
                        workers = self._replace(workers, worker)
        finally:
            for worker in workers:
                worker.stop()
            # Anything still queued after shutdown resolves inline so no
            # future is ever left dangling.
            self._drain_inbox(pending)
            while pending:
                self._run_inline(pending.popleft())

    def _drain_inbox(self, pending: deque, block: bool = False) -> None:
        try:
            timeout = _POLL_INTERVAL if block else None
            while True:
                pending.append(
                    self._inbox.get(block=block, timeout=timeout)
                )
                block = False  # only the first get may wait
        except queue.Empty:
            pass

    def _dispatch(self, worker, pending: deque) -> None:
        request = pending.popleft()
        request.attempts += 1
        try:
            request.task.on_attempt(request.attempts)
        except Exception:
            pass
        try:
            worker.connection.send((0, request.task))
        except Exception:
            # Unpicklable task or torn pipe: run it in this thread.
            self._run_inline(request)
            return
        request.workers.append(worker.process.pid)
        worker.index, worker.task = 0, request
        worker.started = time.monotonic()

    def _overdue(self, worker, now: float) -> bool:
        request = worker.task
        return (
            not request.warmup
            and request.deadline is not None
            and now - worker.started > request.deadline
        )

    # -- completion paths ----------------------------------------------

    def _collect(self, worker, pending: deque) -> bool:
        """Receive one reply if available; ``True`` on success."""
        try:
            if not worker.connection.poll():
                return False
            _index, status, payload = worker.connection.recv()
        except (EOFError, OSError):
            return False
        request = worker.task
        worker.clear()
        if request.warmup:
            return True
        if status == "ok":
            self.tasks_done += 1
            request.future.set_result(
                PoolOutcome(payload, request.attempts, request.workers)
            )
            return True
        if payload.get("transient") and self._may_retry(request):
            pending.append(request)
            return True
        request.future.set_exception(
            RuntimeError(payload.get("exc", "task error"))
        )
        return True

    def _may_retry(self, request: _Request) -> bool:
        return request.attempts <= self.policy.retries

    def _on_death(self, worker, pending: deque) -> None:
        """Worker died without reporting: retry on a fresh warm worker."""
        request = worker.task
        worker.clear()
        self.worker_deaths += 1
        if request.warmup:
            return
        if self._may_retry(request):
            pending.append(request)
        else:
            self._run_inline(request)

    def _on_deadline(self, worker, now: float, pending: deque) -> None:
        request = worker.task
        elapsed = now - worker.started
        worker.process.terminate()
        worker.process.join(timeout=5.0)
        worker.clear()
        self.deadline_kills += 1
        if request.warmup:
            return
        if self._may_retry(request):
            # The retry gets a fresh clock on a fresh worker; its
            # deadline still applies per attempt.
            pending.appendleft(request)
        else:
            request.future.set_exception(
                PoolDeadlineError(
                    f"deadline exceeded ({elapsed:.3g}s"
                    f" > {request.deadline:.3g}s)"
                    f" after {request.attempts} attempt(s)"
                )
            )

    def _replace(self, workers, dead, force: bool = False):
        """Swap a dead/stopped worker for a fresh warmed one."""
        if dead.process.is_alive() and not force:
            return workers
        remaining = [w for w in workers if w is not dead]
        dead.stop()
        if not self._shutdown.is_set():
            try:
                remaining.append(self._spawn_warm())
                self.respawns += 1
            except (OSError, ValueError):
                pass
        return remaining

    def _run_inline(self, request: _Request) -> None:
        """Last-resort in-thread execution (pool unusable)."""
        if request.warmup:
            return
        self.inline_fallbacks += 1
        request.attempts += 1
        request.workers.append(None)
        try:
            result = request.task.run()
        except BaseException as exc:
            request.future.set_exception(exc)
            return
        self.tasks_done += 1
        request.future.set_result(
            PoolOutcome(result, request.attempts, request.workers)
        )
