"""Content-addressed certificate store (memory LRU over a journal).

Certificates are keyed by the runner's salted task fingerprints
(:func:`repro.runner.task_fingerprint`): the key is a SHA-256 over the
exact request data — matrix entries as tagged-JSON values, method,
backend, validator, rounding level — plus :data:`repro.runner.JOURNAL_SALT`.
That makes the store *content-addressed*: two requests hit the same
entry iff their specs are identical, and a salt bump (result semantics
changed) silently invalidates every old entry because all fingerprints
move.

Two tiers:

* an in-memory LRU (``capacity`` entries, ``None`` = unbounded) serving
  repeat requests without touching disk, with hit/miss/eviction
  counters;
* an optional on-disk tier in the journal's own format — an
  append-only fsync'd JSONL file written through
  :class:`repro.runner.Journal`, so a store file is literally a task
  journal (torn-tail repair, last-wins duplicate resolution, exact
  tagged-JSON round-trip) and can be inspected or replayed with the
  same tooling.
"""

from __future__ import annotations

import pathlib
import threading
from collections import OrderedDict
from typing import Any

from ..runner import Journal

__all__ = ["CertificateStore"]


class CertificateStore:
    """LRU + journal-backed store of certificates by fingerprint.

    ``path=None`` keeps the store memory-only (useful for tests and
    fuzz workers). With a path, existing entries are loaded on open
    (``resume`` semantics: last-wins) and every :meth:`put` appends one
    fsync'd JSONL record. Thread-safe: the service's single-flight
    dedup calls into the store from multiple threads.
    """

    def __init__(
        self,
        path: str | pathlib.Path | None = None,
        capacity: int | None = 1024,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None)")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._journal: Journal | None = None
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        self.writes = 0
        if path is not None:
            self._journal = Journal(path, resume=True)

    # -- reading -------------------------------------------------------

    def get(self, fingerprint: str):
        """The stored certificate for ``fingerprint``, or ``None``.

        A memory hit refreshes LRU recency; a disk hit promotes the
        entry into the memory tier.
        """
        with self._lock:
            if fingerprint in self._memory:
                self._memory.move_to_end(fingerprint)
                self.memory_hits += 1
                return self._memory[fingerprint]
            if self._journal is not None:
                entry = self._journal.get(fingerprint)
                if entry is not None and entry.status == "ok":
                    self.disk_hits += 1
                    self._admit(fingerprint, entry.result)
                    return entry.result
            self.misses += 1
            return None

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._memory:
                return True
            return (
                self._journal is not None and fingerprint in self._journal
            )

    def __len__(self) -> int:
        with self._lock:
            if self._journal is not None:
                return len(self._journal)
            return len(self._memory)

    # -- writing -------------------------------------------------------

    def put(self, fingerprint: str, certificate, kind: str = "CertifyTask"):
        """Store ``certificate`` under ``fingerprint`` (last-wins)."""
        with self._lock:
            if self._journal is not None:
                self._journal.record(fingerprint, kind, "ok", certificate)
            self._admit(fingerprint, certificate)
            self.writes += 1
        return certificate

    def _admit(self, fingerprint: str, certificate) -> None:
        """Insert into the memory tier, evicting the LRU entry if full.

        Caller holds the lock.
        """
        self._memory[fingerprint] = certificate
        self._memory.move_to_end(fingerprint)
        if self.capacity is not None:
            while len(self._memory) > self.capacity:
                self._memory.popitem(last=False)
                self.evictions += 1

    # -- instrumentation -----------------------------------------------

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        """A snapshot of every counter (for the bench artifact)."""
        with self._lock:
            return {
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "writes": self.writes,
                "memory_entries": len(self._memory),
                "capacity": self.capacity,
            }

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "CertificateStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
