"""Async front for the certification service.

Wraps a (thread-safe) :class:`repro.service.CertificationService` with
an :mod:`asyncio` submission queue:

* **backpressure** — at most ``max_pending`` requests may be admitted
  concurrently (an ``asyncio.Semaphore``); further ``certify`` calls
  await a slot instead of piling unbounded work onto the pool;
* **non-blocking submission** — ``submit`` runs in a worker thread
  (``asyncio.to_thread``), because without a warm pool the service
  computes inline and would otherwise stall the event loop;
* **per-request deadlines** — forwarded to the pool's deadline/retry
  machinery (pooled mode), exactly like the runner's ``task_deadline``.
"""

from __future__ import annotations

import asyncio

__all__ = ["AsyncCertificationService"]


class AsyncCertificationService:
    """``await``-able facade over a :class:`CertificationService`.

    The wrapped service (and its store/pool) is owned by the caller;
    closing this facade does not close it. All cache, dedup and
    batching semantics are the synchronous service's — two concurrent
    ``certify`` awaits with identical requests still coalesce onto one
    computation.
    """

    def __init__(self, service, max_pending: int = 64):
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        self.service = service
        self.max_pending = max_pending
        self._semaphore = asyncio.Semaphore(max_pending)

    async def certify(self, a, deadline: float | None = None, **kwargs):
        """Certify one system; resolves to a :class:`Certificate`."""
        async with self._semaphore:
            future = await asyncio.to_thread(
                self.service.submit, a, deadline=deadline, **kwargs
            )
            return await asyncio.wrap_future(future)

    async def certify_many(self, requests, deadline: float | None = None):
        """Certify many systems through one batched screen pass."""
        async with self._semaphore:
            return await asyncio.to_thread(
                self.service.certify_many, requests, deadline
            )

    async def gather(self, requests, deadline: float | None = None):
        """Concurrent single-request path: one ``certify`` per request.

        Unlike :meth:`certify_many` (one batch task), each request is
        admitted through the backpressure gate independently — the
        shape of a real request stream. Identical requests coalesce
        via the service's single-flight dedup.
        """
        return await asyncio.gather(
            *(
                self.certify(task, deadline=deadline)
                for task in requests
            )
        )
