"""Certification-as-a-service: the ``certify`` request API.

One request = one (closed-loop) system matrix plus a synthesis recipe
(method, backend, decay/floor parameters, validator, rounding level).
The response is a :class:`Certificate`: the synthesized ``P``, the
exact-validation verdict, and the LMI constraint margins from the
compiled batched screen.

Three performance layers sit between a request and the math:

1. **Content-addressed cache** — requests are fingerprinted with the
   journal's salted task fingerprints; a repeat request returns the
   stored certificate without re-running synthesis
   (:class:`repro.service.store.CertificateStore`).
2. **Single-flight dedup + same-shape batching** — concurrent requests
   with identical fingerprints coalesce onto one in-flight computation
   (exactly one journal entry), and :meth:`CertificationService.certify_many`
   resolves all pending candidate screens through *one*
   :class:`repro.sdp.CompiledLmiSystem` batched eigh/Cholesky pass.
   Both the batched and the per-request screens route through
   :func:`repro.sdp.screen_candidates`, whose gufunc ``eigh`` applies
   LAPACK per stacked matrix — batched results are bit-identical to
   the direct path.
3. **Warm workers** — pass a :class:`repro.service.pool.WarmPool` and
   requests execute on persistent worker processes with compiled
   tensors and svec bases pre-warmed, under per-request deadlines and
   the runner's retry classification.

Deterministic *domain* failures (an infeasible LMI, a non-Hurwitz
matrix) are certificates too — ``synth_status`` records the reason and
the result is cached like any other, because re-running cannot change
it. *Environmental* failures (a killed worker with retries exhausted, a
blown deadline) surface as exceptions and are never cached.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..runner import Task, register_record_type, task_fingerprint
from .store import CertificateStore

__all__ = [
    "Certificate",
    "CertifyTask",
    "CertifyBatchTask",
    "CertificationService",
    "certify",
]


@register_record_type
@dataclass
class Certificate:
    """A cached, journal-round-trippable certification outcome.

    ``floor_margin``/``decay_margin`` are the compiled-screen constraint
    margins (nonnegative = feasible; see
    :meth:`repro.sdp.LyapunovLmiProblem.constraint_margins`).
    ``synthesis_time``/``validation_time`` are measured wall times and
    ``provenance`` records how the request executed (attempts, worker
    pids) — all three are volatile across runs and excluded from
    :meth:`identity`, the stable payload that cached, coalesced and
    batched paths must reproduce bit for bit.
    """

    fingerprint: str
    method: str
    backend: str | None
    validator: str
    sigfigs: int | None
    n: int
    synth_status: str  # "ok" | "timeout" | "infeasible" | "error"
    p: np.ndarray | None = None
    valid: bool | None = None
    alpha: float | None = None
    nu: float | None = None
    floor_margin: float | None = None
    decay_margin: float | None = None
    synthesis_time: float | None = None
    validation_time: float | None = None
    degraded: list = field(default_factory=list)
    provenance: dict | None = None

    def identity(self) -> tuple:
        """The stable (run-independent) payload of this certificate.

        Everything deterministic given the request spec: the matrix
        ``P`` byte-exactly, the verdicts, the screen margins. Wall
        times and execution provenance are excluded — they differ
        between a cold run and a cache hit without changing what was
        certified.
        """
        return (
            self.fingerprint,
            self.method,
            self.backend,
            self.validator,
            self.sigfigs,
            self.n,
            self.synth_status,
            None if self.p is None else self.p.tobytes(),
            self.valid,
            self.alpha,
            self.nu,
            self.floor_margin,
            self.decay_margin,
        )


class CertifyTask(Task):
    """One certification request as a picklable runner task.

    ``a`` is stored as nested lists of floats so the default
    :meth:`~repro.runner.Task.fingerprint_spec` produces a stable
    content address from the exact matrix entries (floats round-trip
    exactly through the tagged-JSON encoding).
    """

    def __init__(
        self,
        a,
        method: str = "lmi",
        backend: str | None = "ipm",
        validator: str = "sylvester",
        sigfigs: int | None = 10,
        alpha: float | None = None,
        nu: float | None = None,
        eq_smt_deadline: float | None = None,
        fallback: bool = True,
    ):
        matrix = np.asarray(a, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("A must be a square matrix")
        self.a = matrix.tolist()
        self.method = method
        self.backend = backend
        self.validator = validator
        self.sigfigs = sigfigs
        self.alpha = alpha
        self.nu = nu
        self.eq_smt_deadline = eq_smt_deadline
        self.fallback = fallback

    def key(self):
        return {
            "n": len(self.a), "method": self.method,
            "backend": self.backend, "validator": self.validator,
        }

    # ------------------------------------------------------------------

    def _matrix(self) -> np.ndarray:
        return np.asarray(self.a, dtype=float)

    def _screen_problem(self, candidate):
        """The fixed-candidate feasibility problem matching the recipe."""
        from ..sdp import LyapunovLmiProblem

        alpha = candidate.info.get("alpha") or 0.0
        nu = candidate.info.get("nu")
        return LyapunovLmiProblem(a=self._matrix(), alpha=alpha, nu=nu)

    def _synthesize(self):
        """``(candidate, None)`` or ``(None, failure_status)``."""
        from ..lyapunov import SynthesisTimeout, synthesize
        from ..sdp import LmiInfeasibleError

        try:
            candidate = synthesize(
                self.method, self._matrix(),
                backend=self.backend or "ipm",
                alpha=self.alpha, nu=self.nu,
                deadline=(
                    self.eq_smt_deadline if self.method == "eq-smt" else None
                ),
            )
        except SynthesisTimeout:
            return None, "timeout"
        except (LmiInfeasibleError, ValueError):
            return None, "infeasible"
        return candidate, None

    def _certificate(self, candidate, margins) -> Certificate:
        """Validate ``candidate`` and assemble the final certificate."""
        from ..validate import validate_candidate

        report = validate_candidate(
            candidate, self._matrix(), sigfigs=self.sigfigs,
            validator=self.validator, fallback=self.fallback,
        )
        floor_margin, decay_margin = margins
        return Certificate(
            fingerprint=task_fingerprint(self),
            method=self.method, backend=candidate.backend,
            validator=self.validator, sigfigs=self.sigfigs,
            n=len(self.a), synth_status="ok",
            p=candidate.p, valid=report.valid,
            alpha=candidate.info.get("alpha"),
            nu=candidate.info.get("nu"),
            floor_margin=floor_margin, decay_margin=decay_margin,
            synthesis_time=candidate.synthesis_time,
            validation_time=report.total_time,
            degraded=report.degraded,
        )

    def _failed(self, status: str) -> Certificate:
        return Certificate(
            fingerprint=task_fingerprint(self),
            method=self.method, backend=self.backend,
            validator=self.validator, sigfigs=self.sigfigs,
            n=len(self.a), synth_status=status,
        )

    def run(self) -> Certificate:
        from ..sdp import screen_candidates

        candidate, failure = self._synthesize()
        if candidate is None:
            return self._failed(failure)
        margins = screen_candidates(
            [(self._screen_problem(candidate), candidate.p)]
        )[0]
        return self._certificate(candidate, margins)

    def on_error(self, message: str) -> Certificate:
        return self._failed("error")

    def timing_detail(self, result):
        detail = {}
        if result.synthesis_time is not None:
            detail["synth_s"] = result.synthesis_time
        if result.validation_time is not None:
            detail["validate_s"] = result.validation_time
        if result.degraded:
            detail["degraded"] = result.degraded
        return detail


class CertifyBatchTask(Task):
    """Several certification requests screened in one compiled pass.

    Synthesis and validation stay per-request (they are per-matrix
    algorithms), but every candidate's two screen blocks go through a
    single :class:`repro.sdp.CompiledLmiSystem`, which stacks
    same-sized blocks and resolves each size group with one batched
    eigh/Cholesky call — the same-shape batching layer. Results are
    bit-identical to running each :class:`CertifyTask` alone (the
    batched gufunc applies LAPACK per stacked matrix).
    """

    def __init__(self, requests: list[CertifyTask]):
        self.requests = list(requests)

    def key(self):
        return {"batch": len(self.requests)}

    def fingerprint_spec(self):
        specs = [task_fingerprint(request) for request in self.requests]
        return type(self).__name__, {"requests": specs}

    def run(self) -> list[Certificate]:
        from ..sdp import screen_candidates

        synthesized = [request._synthesize() for request in self.requests]
        items = [
            (request._screen_problem(candidate), candidate.p)
            for request, (candidate, _status) in zip(
                self.requests, synthesized
            )
            if candidate is not None
        ]
        margins = iter(screen_candidates(items))
        certificates = []
        for request, (candidate, status) in zip(self.requests, synthesized):
            if candidate is None:
                certificates.append(request._failed(status))
            else:
                certificates.append(
                    request._certificate(candidate, next(margins))
                )
        return certificates


class CertificationService:
    """Front door for certification requests (cache, dedup, batching).

    ``store`` defaults to a memory-only :class:`CertificateStore`;
    pass one with a path for a persistent cache. ``pool`` (a
    :class:`repro.service.pool.WarmPool`) moves execution onto warm
    worker processes; without one, requests compute in the calling
    thread. ``task_deadline`` is the default per-request wall-clock
    budget (enforced in pooled mode only, like the runner).
    """

    def __init__(
        self,
        store: CertificateStore | None = None,
        pool=None,
        validator: str = "sylvester",
        sigfigs: int | None = 10,
        fallback: bool = True,
        task_deadline: float | None = None,
    ):
        self.store = store if store is not None else CertificateStore()
        self.pool = pool
        self.validator = validator
        self.sigfigs = sigfigs
        self.fallback = fallback
        self.task_deadline = task_deadline
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self.requests = 0
        self.dedup_hits = 0
        self.computations = 0

    # -- request construction ------------------------------------------

    def request(
        self,
        a,
        b=None,
        c=None,
        gains=None,
        method: str = "lmi",
        backend: str | None = "ipm",
        alpha: float | None = None,
        nu: float | None = None,
        validator: str | None = None,
        sigfigs: int | None = None,
        eq_smt_deadline: float | None = None,
    ) -> CertifyTask:
        """Build the task for one request.

        With only ``a``, certifies that matrix directly. With ``b``,
        ``c`` and ``gains`` (a :class:`repro.systems.PIGains` or a
        ``(kp, ki)`` pair), certifies the closed-loop matrix of the PI
        feedback interconnection (paper Eq. 18-22).
        """
        matrix = self._closed_loop(a, b, c, gains)
        return CertifyTask(
            matrix, method=method, backend=backend,
            validator=self.validator if validator is None else validator,
            sigfigs=self.sigfigs if sigfigs is None else sigfigs,
            alpha=alpha, nu=nu, eq_smt_deadline=eq_smt_deadline,
            fallback=self.fallback,
        )

    @staticmethod
    def _closed_loop(a, b, c, gains) -> np.ndarray:
        if b is None and c is None and gains is None:
            return np.asarray(a, dtype=float)
        if b is None or c is None or gains is None:
            raise ValueError(
                "closed-loop requests need all of b, c and gains"
            )
        from ..systems import PIGains, StateSpace, closed_loop_matrices

        if not isinstance(gains, PIGains):
            kp, ki = gains
            gains = PIGains(kp, ki)
        a_cl, _b_cl = closed_loop_matrices(StateSpace(a, b, c), gains)
        return a_cl

    # -- the three entry points ----------------------------------------

    def certify(self, a, deadline: float | None = None, **request_kwargs):
        """Certify one system, blocking; returns a :class:`Certificate`."""
        return self.submit(a, deadline=deadline, **request_kwargs).result()

    def submit(
        self, a, deadline: float | None = None, **request_kwargs
    ) -> Future:
        """Submit one request; returns a :class:`~concurrent.futures.Future`.

        Cache hits resolve immediately; an identical in-flight request
        returns *its* future (single-flight); otherwise the request
        computes on the warm pool (or inline without one), is stored
        exactly once, and resolves every coalesced future.
        """
        task = (
            # Any runner Task passes through untouched — this is how
            # chaos wrappers (and pre-built CertifyTasks) are injected.
            a if isinstance(a, Task)
            else self.request(a, **request_kwargs)
        )
        fingerprint = task_fingerprint(task)
        with self._lock:
            self.requests += 1
            cached = self.store.get(fingerprint)
            if cached is not None:
                future: Future = Future()
                future.set_result(cached)
                return future
            inflight = self._inflight.get(fingerprint)
            if inflight is not None:
                self.dedup_hits += 1
                return inflight
            future = Future()
            self._inflight[fingerprint] = future
            self.computations += 1
        self._execute(fingerprint, task, future, deadline)
        return future

    def certify_many(
        self, requests, deadline: float | None = None
    ) -> list:
        """Certify many systems; pending screens share one batched pass.

        ``requests`` is a sequence of :class:`CertifyTask` (or kwargs
        dicts for :meth:`request`). Cache hits and in-flight duplicates
        are skimmed off first; everything left runs as a single
        :class:`CertifyBatchTask` whose candidate screens go through
        one compiled LMI system. Returns certificates in request order.
        """
        tasks = [
            r if isinstance(r, Task) else self.request(**r)
            for r in requests
        ]
        fingerprints = [task_fingerprint(task) for task in tasks]
        futures: dict[str, Future] = {}
        fresh: dict[str, tuple[CertifyTask, Future]] = {}
        with self._lock:
            for fingerprint, task in zip(fingerprints, tasks):
                self.requests += 1
                if fingerprint in futures:  # duplicate within the batch
                    self.dedup_hits += 1
                    continue
                cached = self.store.get(fingerprint)
                if cached is not None:
                    future: Future = Future()
                    future.set_result(cached)
                    futures[fingerprint] = future
                    continue
                inflight = self._inflight.get(fingerprint)
                if inflight is not None:
                    self.dedup_hits += 1
                    futures[fingerprint] = inflight
                    continue
                future = Future()
                self._inflight[fingerprint] = future
                futures[fingerprint] = future
                fresh[fingerprint] = (task, future)
                self.computations += 1
        if fresh:
            batch = CertifyBatchTask([task for task, _ in fresh.values()])
            self._execute_batch(list(fresh.items()), batch, deadline)
        return [futures[fingerprint].result() for fingerprint in fingerprints]

    # -- execution ------------------------------------------------------

    def _execute(self, fingerprint, task, future, deadline):
        if self.pool is not None:
            inner = self.pool.submit(
                task, deadline=self._deadline(deadline)
            )
            inner.add_done_callback(
                lambda done: self._finish_pooled(fingerprint, future, done)
            )
            return
        try:
            certificate = task.run()
        except BaseException as exc:
            self._resolve_error(fingerprint, future, exc)
            return
        certificate.provenance = {"executor": "inline", "attempts": 1}
        self._resolve(fingerprint, future, certificate)

    def _execute_batch(self, fresh, batch, deadline):
        if self.pool is not None:
            inner = self.pool.submit(
                batch, deadline=self._deadline(deadline)
            )
            inner.add_done_callback(
                lambda done: self._finish_pooled_batch(fresh, done)
            )
            return
        try:
            certificates = batch.run()
        except BaseException as exc:
            for fingerprint, (_task, future) in fresh:
                self._resolve_error(fingerprint, future, exc)
            return
        for (fingerprint, (_task, future)), certificate in zip(
            fresh, certificates
        ):
            certificate.provenance = {"executor": "inline", "attempts": 1}
            self._resolve(fingerprint, future, certificate)

    def _deadline(self, deadline):
        return self.task_deadline if deadline is None else deadline

    def _finish_pooled(self, fingerprint, future, done):
        try:
            outcome = done.result()
        except BaseException as exc:
            self._resolve_error(fingerprint, future, exc)
            return
        certificate = outcome.result
        certificate.provenance = self._pool_provenance(outcome)
        self._resolve(fingerprint, future, certificate)

    def _finish_pooled_batch(self, fresh, done):
        try:
            outcome = done.result()
        except BaseException as exc:
            for fingerprint, (_task, future) in fresh:
                self._resolve_error(fingerprint, future, exc)
            return
        provenance = self._pool_provenance(outcome)
        for (fingerprint, (_task, future)), certificate in zip(
            fresh, outcome.result
        ):
            certificate.provenance = dict(provenance)
            self._resolve(fingerprint, future, certificate)

    @staticmethod
    def _pool_provenance(outcome) -> dict:
        return {
            "executor": "pool",
            "attempts": outcome.attempts,
            "workers": list(outcome.workers),
        }

    def _resolve(self, fingerprint, future, certificate):
        """Store exactly once, then wake every coalesced waiter."""
        self.store.put(fingerprint, certificate)
        with self._lock:
            self._inflight.pop(fingerprint, None)
        future.set_result(certificate)

    def _resolve_error(self, fingerprint, future, exc):
        with self._lock:
            self._inflight.pop(fingerprint, None)
        future.set_exception(exc)

    # -- instrumentation / lifecycle -----------------------------------

    def counters(self) -> dict:
        """Service + store counters (for the bench artifact)."""
        with self._lock:
            counters = {
                "requests": self.requests,
                "computations": self.computations,
                "dedup_hits": self.dedup_hits,
            }
        counters.update(self.store.counters())
        if self.pool is not None:
            counters["pool"] = self.pool.counters()
        return counters

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
        self.store.close()

    def __enter__(self) -> "CertificationService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def certify(a, **kwargs) -> Certificate:
    """One-shot convenience: certify ``a`` with a throwaway service."""
    with CertificationService() as service:
        return service.certify(a, **kwargs)
