"""The generic campaign engine (refactored out of the experiment drivers).

Every experiment driver used to thread the same six runner knobs —
``jobs``, ``task_deadline``, ``timing``, ``journal``, ``retry``,
``stats`` — through its signature and forward them verbatim to
:func:`repro.runner.run_tasks`. :class:`CampaignEngine` bundles those
knobs into one reusable object: the drivers become thin clients that
build their task grids and call :meth:`CampaignEngine.run`, and the
certification service reuses the *same* engine for its request
execution, so service campaigns inherit journaling, retries, deadlines
and timing collection for free.

``run`` forwards to :func:`repro.runner.run_tasks` with exactly the
arguments the drivers used to pass, so an engine-routed campaign
renders byte-identically to the pre-engine code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runner import CampaignStats, resolve_shards, run_sharded, run_tasks

__all__ = ["CampaignEngine"]


@dataclass
class CampaignEngine:
    """Shared execution context for task campaigns.

    Parameters mirror :func:`repro.runner.run_tasks`: ``jobs`` sizes
    the worker pool (``None`` = all available CPUs, honouring the
    ``REPRO_JOBS`` env override; ``1`` = in-process), ``task_deadline``
    is the per-task wall-clock kill (pooled mode only), ``timing`` an
    optional :class:`repro.runner.TimingCollector`, ``journal`` a
    :class:`repro.runner.Journal` for crash-safe resume, ``retry`` a
    :class:`repro.runner.RetryPolicy` (or int shorthand), and ``stats``
    accumulates the campaign summary counters across every ``run``
    call that shares this engine.

    ``shards`` routes campaigns through the fault-tolerant shard
    supervisor (:func:`repro.runner.run_sharded`) instead of the flat
    process pool: ``None`` honours the ``REPRO_SHARDS`` env override
    and otherwise stays unsharded, a resolved count of 1 is exactly
    ``run_tasks``. ``shard_opts`` passes supervisor knobs through
    (``heartbeat_s``, ``lease_ttl``, ``window``, ``chaos``, ``watch``,
    ``watch_interval``, ``max_requeues``).
    """

    jobs: int | None = 1
    task_deadline: float | None = None
    timing: object | None = None
    journal: object | None = None
    retry: object | None = None
    stats: CampaignStats = field(default_factory=CampaignStats)
    shards: int | None = None
    shard_opts: dict = field(default_factory=dict)

    @classmethod
    def ensure(
        cls,
        engine: "CampaignEngine | None",
        jobs: int | None = 1,
        task_deadline: float | None = None,
        timing=None,
        journal=None,
        retry=None,
        stats=None,
        shards=None,
        shard_opts=None,
    ) -> "CampaignEngine":
        """``engine`` if given, else one built from the legacy kwargs.

        This is the drivers' compatibility shim: their historical
        ``jobs``/``timing``/``journal``/... parameters keep working,
        while callers holding a :class:`CampaignEngine` pass it
        directly and the legacy knobs are ignored.
        """
        if engine is not None:
            return engine
        built = cls(
            jobs=jobs, task_deadline=task_deadline, timing=timing,
            journal=journal, retry=retry, shards=shards,
        )
        if stats is not None:
            built.stats = stats
        if shard_opts is not None:
            built.shard_opts = dict(shard_opts)
        return built

    def run(self, tasks) -> list:
        """Run ``tasks`` under this engine's context, in submission order."""
        if resolve_shards(self.shards) > 1:
            return run_sharded(
                tasks,
                shards=self.shards,
                journal=self.journal,
                retry=self.retry,
                stats=self.stats,
                collect=self.timing,
                task_deadline=self.task_deadline,
                jobs=self.jobs,
                **self.shard_opts,
            )
        return run_tasks(
            tasks,
            jobs=self.jobs,
            task_deadline=self.task_deadline,
            collect=self.timing,
            journal=self.journal,
            retry=self.retry,
            stats=self.stats,
        )
