"""Certification-as-a-service on top of the experiment machinery.

The paper's workflow is one-shot: every switched PI loop pays full
synthesis+validation cost from scratch. This package turns the
reproduction into a serving layer — the workload shape of certifying
fleets of gain-scheduled controllers across operating envelopes —
with three performance layers:

* :mod:`repro.service.store` — a content-addressed certificate cache
  keyed by the journal's salted task fingerprints (LRU memory tier
  over the journal's own on-disk format);
* :mod:`repro.service.api` — the ``certify`` request API with
  single-flight dedup (identical in-flight requests coalesce to one
  computation and one journal entry) and same-shape batching (pending
  candidate screens share one compiled batched-eigh/Cholesky pass);
* :mod:`repro.service.pool` — a persistent warm-worker pool reusing
  the runner's worker protocol, with per-request deadlines and
  retry-on-fresh-worker; :mod:`repro.service.aio` adds the asyncio
  front (submission queue, backpressure).

:mod:`repro.service.engine` holds the generic
:class:`~repro.service.engine.CampaignEngine` the four experiment
drivers now run through — the service and the drivers share one
execution path.
"""

from .aio import AsyncCertificationService
from .api import (
    Certificate,
    CertificationService,
    CertifyBatchTask,
    CertifyTask,
    certify,
)
from .engine import CampaignEngine
from .pool import PoolDeadlineError, PoolOutcome, WarmPool, WarmupTask
from .store import CertificateStore

__all__ = [
    "Certificate",
    "CertificationService",
    "AsyncCertificationService",
    "CertifyTask",
    "CertifyBatchTask",
    "certify",
    "CertificateStore",
    "CampaignEngine",
    "WarmPool",
    "WarmupTask",
    "PoolOutcome",
    "PoolDeadlineError",
]
