"""Figure 3 driver: validation time across symbolic solvers.

The paper's Figure 3 compares the wall-clock cost of validating the same
candidate Lyapunov functions with different symbolic engines (SymPy's
``is_positive_definite``, an ad-hoc Sylvester implementation,
Mathematica, Z3, CVC5 — the latter ones also in a "+ det" variant).
Our validator registry plays the same roles (see
:mod:`repro.validate.validators`); this driver validates one shared
candidate set with every validator and renders cumulative times plus
the slowdown relative to the fastest (Sylvester — the paper's winner).

Search-based validators (``icp``/``icp+det``) and SymPy are far slower
on large instances; ``size_caps`` bounds the *plant* size each validator
is asked to handle, mirroring how the paper's per-solver timeouts show
up as missing/huge bars.
"""

from __future__ import annotations

from collections import defaultdict

from ..engine import case_by_name
from .records import Figure3Record, render_grid
from .table1 import run_table1

__all__ = ["DEFAULT_SIZE_CAPS", "run_figure3", "render_figure3"]

DEFAULT_SIZE_CAPS = {
    "sylvester": 18,
    "gauss": 18,
    "ldl": 18,
    "sympy": 10,
    "icp": 3,
    "icp+det": 3,
}


def run_figure3(
    candidates: dict | None = None,
    validators: tuple[str, ...] = (
        "sylvester", "gauss", "ldl", "sympy", "icp", "icp+det",
    ),
    size_caps: dict | None = None,
    sizes: tuple[int, ...] = (3, 5, 10, 15, 18),
    icp_max_boxes: int = 150_000,
    jobs: int | None = 1,
    task_deadline: float | None = None,
    timing=None,
    journal=None,
    retry=None,
    stats=None,
    shards=None,
    fallback: bool = True,
    engine=None,
) -> list[Figure3Record]:
    """Validate a shared candidate set with every registered validator.

    Each (candidate, validator) pair is one runner task, so the slow
    search-based validators no longer serialize the sweep when
    ``jobs > 1``. ``journal``/``retry``/``stats`` make the campaign
    resumable; ``fallback=False`` disarms the degradation chains. An
    explicit ``engine`` supersedes the individual runner knobs.
    """
    import dataclasses

    from ..runner import Figure3Task
    from ..service.engine import CampaignEngine

    engine = CampaignEngine.ensure(
        engine, jobs=jobs, task_deadline=task_deadline, timing=timing,
        journal=journal, retry=retry, stats=stats, shards=shards,
    )
    if size_caps is None:
        size_caps = DEFAULT_SIZE_CAPS
    if candidates is None:
        # A representative, quick-to-synthesize candidate set: eq-num and
        # one LMI method per case/mode. The synthesis stage historically
        # ran without the per-task deadline (it only applies to the
        # validation sweep), so strip it from the shared engine.
        from .records import MethodKey

        _, candidates = run_table1(
            sizes=sizes,
            methods=[MethodKey("eq-num"), MethodKey("lmi", "shift")],
            keep_candidates=True,
            fallback=fallback,
            engine=dataclasses.replace(engine, task_deadline=None),
        )
    tasks = []
    for (case_name, mode, method, backend), candidate in candidates.items():
        case = case_by_name(case_name)
        for validator in validators:
            if case.size > size_caps.get(validator, 18):
                continue
            options = (
                {"max_boxes": icp_max_boxes}
                if validator.startswith("icp")
                else {}
            )
            tasks.append(
                Figure3Task(
                    case_name=case_name, size=case.size, mode=mode,
                    method=method, backend=backend, candidate=candidate,
                    validator=validator, options=options, fallback=fallback,
                )
            )
    outcomes = engine.run(tasks)
    return [record for record in outcomes if record is not None]


def render_figure3(records: list[Figure3Record]) -> str:
    """Cumulative validation time per validator and per size, plus the
    slowdown relative to the Sylvester method (the paper's reference
point; our elimination-based checks beat it — see EXPERIMENTS.md)."""
    sizes = sorted({r.size for r in records})
    validators = []
    for r in records:
        if r.validator not in validators:
            validators.append(r.validator)
    cumulative: dict = defaultdict(float)
    counts: dict = defaultdict(int)
    for r in records:
        cumulative[(r.validator, r.size)] += r.time
        counts[(r.validator, r.size)] += 1
    headers = ["validator"] + [f"s{size} (s)" for size in sizes] + [
        "total (s)", "vs sylvester",
    ]
    sylvester_total = sum(
        cumulative[("sylvester", size)] for size in sizes
    ) or 1e-12
    rows = []
    for validator in validators:
        row = [validator]
        total = 0.0
        for size in sizes:
            if counts[(validator, size)]:
                value = cumulative[(validator, size)]
                total += value
                row.append(f"{value:.3g}")
            else:
                row.append("-")
        row.append(f"{total:.3g}")
        row.append(f"{total / sylvester_total:.1f}x")
        rows.append(row)
    return render_grid(
        headers, rows, title="Figure 3 — validation time per symbolic solver"
    )
