"""Result records and text rendering shared by the experiment drivers.

Every experiment produces a list of flat records; renderers turn them
into the paper's table/figure layout (plain text, printed by the CLI in
``repro.experiments.__main__`` and by the benchmark harness).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable

__all__ = [
    "Table1Record",
    "Figure3Record",
    "Table2Record",
    "PiecewiseRecord",
    "CegisRecord",
    "MethodKey",
    "method_rows",
    "render_grid",
    "dump_records",
]


@dataclass(frozen=True)
class MethodKey:
    """A Table-I/II row identity: method plus (optional) LMI backend."""

    method: str
    backend: str | None = None

    def __str__(self) -> str:
        return f"{self.method}[{self.backend}]" if self.backend else self.method


def method_rows(include_eq_smt: bool = True) -> list[MethodKey]:
    """The paper's row order: eq-smt, eq-num, modal, then the LMI family
    by backend (our ipm/shift/proj stand in for cvxopt/mosek/smcp)."""
    rows = []
    if include_eq_smt:
        rows.append(MethodKey("eq-smt"))
    rows.append(MethodKey("eq-num"))
    rows.append(MethodKey("modal"))
    for method in ("lmi", "lmi-alpha", "lmi-alpha+"):
        for backend in ("ipm", "shift", "proj"):
            rows.append(MethodKey(method, backend))
    return rows


@dataclass
class Table1Record:
    """One (case, mode, method) cell of Table I."""
    case: str  # benchmark name, e.g. "size10i"
    size: int
    mode: int
    method: str
    backend: str | None
    synth_time: float | None  # None = timeout / failure
    synth_status: str  # "ok" | "timeout" | "infeasible" | "error"
    valid: bool | None
    validation_time: float | None
    sigfigs: int = 10
    #: Validator fallback/escalation hops (ValidationReport.degraded);
    #: empty for a clean run. Renderers ignore it — tables stay
    #: byte-identical — but the JSON dump and timing artifact keep it.
    degraded: list = field(default_factory=list)


@dataclass
class Figure3Record:
    """One validator timing sample of Figure 3."""
    case: str
    size: int
    mode: int
    method: str
    backend: str | None
    validator: str
    valid: bool | None
    time: float
    #: Validator fallback/escalation hops (empty for a clean run).
    degraded: list = field(default_factory=list)


@dataclass
class Table2Record:
    """One robust-region cell of Table II."""
    case: str
    size: int
    mode: int
    method: str
    backend: str | None
    time: float | None  # robust-level synthesis time (None = skipped)
    volume: float | None
    log10_volume: float | None
    epsilon: float | None
    k: float | None
    region_case: str | None
    skipped_reason: str | None = None


@dataclass
class PiecewiseRecord:
    """One piecewise synthesis+validation attempt (Sec. VI-B.2)."""
    case: str
    size: int
    encoding: str
    lmi_feasible: bool
    proved_infeasible: bool
    iterations: int
    synth_time: float
    validation_valid: bool | None
    failed_conditions: list = field(default_factory=list)
    validation_time: float = 0.0
    #: Synthesis engine ("hybrid" | "ellipsoid" | "barrier"); defaulted
    #: so pre-existing journals decode into the extended record.
    solver: str = "hybrid"
    #: Per-phase synthesis wall times (compile_s / oracle_s / polish_s).
    phases: dict = field(default_factory=dict)


@dataclass
class CegisRecord:
    """One CEGIS campaign (case, regime, synthesis mode) — the loop
    that closes the paper's open Section VI-B.2 refinement step."""
    case: str
    size: int
    #: "nominal" (the paper's bistable references) or "attracting".
    regime: str
    #: synthesizer block set: "sampled" (true CEGIS) or "full".
    synthesis: str
    #: rounding protocol: "structured" (exact continuity) or
    #: "independent" (the paper's — pinned to fail).
    snap: str
    status: str  # "validated" | "infeasible" | "stalled" | "exhausted"
    rounds: int
    cuts: int
    validated: bool
    proved_infeasible: bool
    synth_time: float
    verify_time: float
    refute_time: float
    total_time: float
    #: SHA-256 of the deterministic structural provenance (statuses,
    #: per-round verdicts, cut fingerprints — no wall times).
    digest: str
    #: verification conditions still failing at the final round.
    failed_checks: list = field(default_factory=list)


def render_grid(
    headers: list[str],
    rows: Iterable[list[str]],
    title: str | None = None,
) -> str:
    """Monospace grid rendering (the library's 'tables')."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def dump_records(records: list, path: str) -> None:
    """Write records as JSON (floats kept as-is, None preserved)."""
    with open(path, "w") as handle:
        json.dump([asdict(r) for r in records], handle, indent=2, default=str)
