"""Experiment drivers regenerating every table and figure of the paper.

Run from the command line::

    python -m repro.experiments table1   [--quick]
    python -m repro.experiments figure3  [--quick]
    python -m repro.experiments piecewise [--quick]
    python -m repro.experiments table2   [--quick]
    python -m repro.experiments all      [--quick]
"""

from .figure3 import DEFAULT_SIZE_CAPS, render_figure3, run_figure3
from .piecewise import render_piecewise, run_piecewise
from .records import (
    Figure3Record,
    MethodKey,
    PiecewiseRecord,
    Table1Record,
    Table2Record,
    dump_records,
    method_rows,
    render_grid,
)
from .table1 import render_sweep, render_table1, rounding_sweep, run_table1
from .table2 import render_table2, run_table2

__all__ = [
    "MethodKey",
    "method_rows",
    "render_grid",
    "dump_records",
    "Table1Record",
    "Figure3Record",
    "Table2Record",
    "PiecewiseRecord",
    "run_table1",
    "render_table1",
    "rounding_sweep",
    "render_sweep",
    "run_figure3",
    "render_figure3",
    "DEFAULT_SIZE_CAPS",
    "run_piecewise",
    "render_piecewise",
    "run_table2",
    "render_table2",
]
