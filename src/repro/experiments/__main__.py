"""Command-line entry point for the experiment drivers.

``--quick`` restricts every experiment to the small benchmarks so the
whole sweep finishes in a few minutes; the full configuration mirrors
the paper's grid (and takes correspondingly longer, dominated by the
``eq-smt`` deadline and the ICP validators). ``--jobs N`` fans each
grid out over N worker processes (default: all CPU cores; ``--jobs 1``
runs in-process) — results are re-sorted into submission order, so the
rendered output is independent of N. ``--record DIR`` saves each
experiment's rendered output as ``<experiment>_full.txt`` (or
``_quick``), the files EXPERIMENTS.md references. Unless ``--no-bench``
is given, per-task wall times are merged into ``BENCH_experiments.json``
(see :mod:`repro.runner.timing` for the schema) so the performance
trajectory is tracked across PRs. The piecewise experiment additionally
takes ``--solver hybrid|ellipsoid|barrier`` (default ``hybrid``: the
tensorized ellipsoid burn-in + warm-started barrier polish) and
``--oracle-batch on|off`` (``off`` restores the per-block differential
separation oracle). The ``cegis`` experiment runs the
counterexample-guided refinement loop over both reference regimes
(``--cegis-rounds`` caps the per-campaign round budget).

Campaigns survive crashes: ``--journal PATH`` records every finished
task in an append-only JSONL journal, and ``--resume`` replays it so an
interrupted run re-executes only the gaps (rendered output is identical
to an uninterrupted run). ``--retries N`` re-runs transiently failed
tasks (worker death, deadline kill, IPC errors) with exponential
backoff; ``--no-fallback`` disarms the validator degradation chains
(see :mod:`repro.validate.validators`). A one-line campaign summary
(tasks run / replayed / retried / degraded) prints after each
experiment's table.

``--shards N`` (or the ``REPRO_SHARDS`` env override) routes each
campaign through the fault-tolerant shard supervisor
(:mod:`repro.runner.shard`): the grid is partitioned by fingerprint
hash into N independently-journaled shard processes with heartbeat
leases, work-stealing and requeue-on-shard-death; per-shard journals
merge deterministically back into ``--journal``. ``--watch`` renders a
live plaintext dashboard (to stderr) while a sharded campaign runs;
``--lease-ttl``/``--heartbeat`` tune the death-detection window.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import dataclasses

from ..runner import (
    CampaignStats,
    Journal,
    RetryPolicy,
    TimingCollector,
    resolve_jobs,
    write_bench,
)
from ..service.engine import CampaignEngine
from .cegis import render_cegis, run_cegis
from .figure3 import render_figure3, run_figure3
from .piecewise import render_piecewise, run_piecewise
from .records import dump_records
from .table1 import render_sweep, render_table1, rounding_sweep, run_table1
from .table2 import render_table2, run_table2


def _engine(args, timing, campaign) -> CampaignEngine:
    """One shared campaign engine per experiment run (see
    :mod:`repro.service.engine`)."""
    engine = CampaignEngine(
        jobs=args.jobs,
        task_deadline=args.task_deadline,
        timing=timing,
        journal=campaign.journal,
        retry=campaign.retry,
        shards=args.shards,
        shard_opts=campaign.shard_opts,
    )
    engine.stats = campaign.stats
    return engine


class _Campaign:
    """Per-experiment resilience context: shared journal, retry policy,
    and the summary counters printed after the rendered output."""

    def __init__(self, args, journal):
        self.journal = journal
        self.retry = (
            RetryPolicy(retries=args.retries, backoff=args.retry_backoff)
            if args.retries
            else None
        )
        self.stats = CampaignStats()
        self.fallback = not args.no_fallback
        self.shard_opts = {
            "heartbeat_s": args.heartbeat,
            "lease_ttl": args.lease_ttl,
            "watch": True if args.watch else None,
        }


def _table1(args, timing, campaign) -> str:
    sizes = (3, 5) if args.quick else (3, 5, 10, 15, 18)
    deadline = 5.0 if args.quick else args.eq_smt_deadline
    engine = _engine(args, timing, campaign)
    records, candidates = run_table1(
        sizes=sizes, eq_smt_deadline=deadline, keep_candidates=True,
        fallback=campaign.fallback, engine=engine,
    )
    text = render_table1(records)
    # The 10-sigfig validations were just computed: reuse them and only
    # re-run the aggressive rounding levels (6 and 4). The sweep never
    # honoured --task-deadline, so strip it from the shared engine.
    sweep = rounding_sweep(
        candidates, base_records=records, fallback=campaign.fallback,
        engine=dataclasses.replace(engine, task_deadline=None),
    )
    text += "\n\n" + render_sweep(sweep)
    if args.json:
        dump_records(records, args.json)
    return text


def _figure3(args, timing, campaign) -> str:
    sizes = (3, 5) if args.quick else (3, 5, 10, 15, 18)
    records = run_figure3(
        sizes=sizes, fallback=campaign.fallback,
        engine=_engine(args, timing, campaign),
    )
    if args.json:
        dump_records(records, args.json)
    return render_figure3(records)


def _piecewise(args, timing, campaign) -> str:
    names = ("size3",) if args.quick else ("size3", "size5")
    iterations = 6_000 if args.quick else 20_000
    records = run_piecewise(
        case_names=names, max_iterations=iterations,
        solver=args.solver, oracle_batch=args.oracle_batch == "on",
        engine=_engine(args, timing, campaign),
    )
    if args.json:
        dump_records(records, args.json)
    return render_piecewise(records)


def _cegis(args, timing, campaign) -> str:
    names = ("size3",) if args.quick else ("size3", "size5", "size10")
    records = run_cegis(
        case_names=names,
        max_rounds=args.cegis_rounds,
        max_iterations=6_000 if args.quick else 30_000,
        engine=_engine(args, timing, campaign),
    )
    if args.json:
        dump_records(records, args.json)
    return render_cegis(records)


def _table2(args, timing, campaign) -> str:
    names = ("size3", "size5") if args.quick else ("size15", "size18")
    records = run_table2(
        case_names=names, fallback=campaign.fallback,
        engine=_engine(args, timing, campaign),
    )
    if args.json:
        dump_records(records, args.json)
    return render_table2(records)


COMMANDS = {
    "table1": _table1,
    "figure3": _figure3,
    "piecewise": _piecewise,
    "cegis": _cegis,
    "table2": _table2,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment", choices=[*COMMANDS, "all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small-benchmark configuration (minutes instead of hours)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all CPU cores; 1 = in-process)",
    )
    parser.add_argument(
        "--task-deadline", type=float, default=None, metavar="SECONDS",
        help="kill any single task exceeding this wall-clock budget "
        "(pooled mode only)",
    )
    parser.add_argument(
        "--eq-smt-deadline", type=float, default=60.0,
        help="wall-clock budget (s) for the exact eq-smt method",
    )
    parser.add_argument(
        "--solver", choices=("hybrid", "ellipsoid", "barrier"),
        default="hybrid",
        help="piecewise synthesis pipeline: tensorized ellipsoid burn-in "
        "+ warm-started barrier polish (hybrid), certifying ellipsoid "
        "alone, or barrier alone (piecewise experiment only)",
    )
    parser.add_argument(
        "--oracle-batch", choices=("on", "off"), default="on",
        help="tensorized batched LMI separation oracle; 'off' runs the "
        "per-block differential oracle (piecewise experiment only)",
    )
    parser.add_argument(
        "--cegis-rounds", type=int, default=40, metavar="N",
        help="CEGIS round budget per campaign (cegis experiment only)",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="also dump raw records to this JSON file",
    )
    parser.add_argument(
        "--record", type=str, default=None, metavar="DIR",
        help="save rendered output to DIR/<experiment>_full|_quick.txt",
    )
    parser.add_argument(
        "--bench", type=str, default="BENCH_experiments.json", metavar="PATH",
        help="per-task timing artifact (merged per experiment)",
    )
    parser.add_argument(
        "--no-bench", action="store_true",
        help="skip writing the timing artifact",
    )
    parser.add_argument(
        "--journal", type=str, default=None, metavar="PATH",
        help="append-only JSONL result journal (crash-safe campaign state)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay completed tasks from --journal and run only the gaps",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry transiently failed tasks up to N times "
        "(exponential backoff; default: no retries)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="SECONDS",
        help="base delay of the retry backoff (doubles per attempt)",
    )
    parser.add_argument(
        "--no-fallback", action="store_true",
        help="disarm the kernel-backend fallback and validator "
        "escalation chains (failures propagate)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition each campaign across N fault-tolerant shard "
        "processes (default: REPRO_SHARDS env, else unsharded)",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="render a live per-shard progress dashboard to stderr "
        "(sharded campaigns only)",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=0.5, metavar="SECONDS",
        help="shard heartbeat-lease rewrite interval",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=10.0, metavar="SECONDS",
        help="declare a shard dead when its lease is older than this",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.journal:
        parser.error("--resume requires --journal")
    chosen = list(COMMANDS) if args.experiment == "all" else [args.experiment]
    journal = (
        Journal(args.journal, resume=args.resume) if args.journal else None
    )
    try:
        for name in chosen:
            if args.experiment == "all":
                print(f"\n=== {name} ===")
            timing = None if args.no_bench else TimingCollector()
            campaign = _Campaign(args, journal)
            started = time.perf_counter()
            text = COMMANDS[name](args, timing, campaign)
            elapsed = time.perf_counter() - started
            if timing is not None:
                from ..runner import resolve_shards

                shard_count = resolve_shards(args.shards)
                write_bench(
                    args.bench, name, timing,
                    jobs=resolve_jobs(args.jobs), quick=args.quick,
                    total_wall_s=elapsed,
                    stats=campaign.stats,
                    shards=shard_count if shard_count > 1 else None,
                )
            print(text)
            # Campaign counters go to the terminal only, never into the
            # --record files: resumed runs must stay byte-identical.
            print(campaign.stats.summary())
            if args.record:
                suffix = "quick" if args.quick else "full"
                path = pathlib.Path(args.record) / f"{name}_{suffix}.txt"
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(text + "\n")
    finally:
        if journal is not None:
            journal.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
