"""Command-line entry point for the experiment drivers.

``--quick`` restricts every experiment to the small benchmarks so the
whole sweep finishes in a few minutes; the full configuration mirrors
the paper's grid (and takes correspondingly longer, dominated by the
``eq-smt`` deadline and the ICP validators). ``--jobs N`` fans each
grid out over N worker processes (default: all CPU cores; ``--jobs 1``
runs in-process) — results are re-sorted into submission order, so the
rendered output is independent of N. ``--record DIR`` saves each
experiment's rendered output as ``<experiment>_full.txt`` (or
``_quick``), the files EXPERIMENTS.md references. Unless ``--no-bench``
is given, per-task wall times are merged into ``BENCH_experiments.json``
(see :mod:`repro.runner.timing` for the schema) so the performance
trajectory is tracked across PRs.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from ..runner import TimingCollector, resolve_jobs, write_bench
from .figure3 import render_figure3, run_figure3
from .piecewise import render_piecewise, run_piecewise
from .records import dump_records
from .table1 import render_sweep, render_table1, rounding_sweep, run_table1
from .table2 import render_table2, run_table2


def _runner_kwargs(args, timing):
    return {
        "jobs": args.jobs,
        "task_deadline": args.task_deadline,
        "timing": timing,
    }


def _table1(args, timing) -> str:
    sizes = (3, 5) if args.quick else (3, 5, 10, 15, 18)
    deadline = 5.0 if args.quick else args.eq_smt_deadline
    records, candidates = run_table1(
        sizes=sizes, eq_smt_deadline=deadline, keep_candidates=True,
        **_runner_kwargs(args, timing),
    )
    text = render_table1(records)
    # The 10-sigfig validations were just computed: reuse them and only
    # re-run the aggressive rounding levels (6 and 4).
    sweep = rounding_sweep(
        candidates, base_records=records, jobs=args.jobs, timing=timing
    )
    text += "\n\n" + render_sweep(sweep)
    if args.json:
        dump_records(records, args.json)
    return text


def _figure3(args, timing) -> str:
    sizes = (3, 5) if args.quick else (3, 5, 10, 15, 18)
    records = run_figure3(sizes=sizes, **_runner_kwargs(args, timing))
    if args.json:
        dump_records(records, args.json)
    return render_figure3(records)


def _piecewise(args, timing) -> str:
    names = ("size3",) if args.quick else ("size3", "size5")
    iterations = 6_000 if args.quick else 20_000
    records = run_piecewise(
        case_names=names, max_iterations=iterations,
        **_runner_kwargs(args, timing),
    )
    if args.json:
        dump_records(records, args.json)
    return render_piecewise(records)


def _table2(args, timing) -> str:
    names = ("size3", "size5") if args.quick else ("size15", "size18")
    records = run_table2(case_names=names, **_runner_kwargs(args, timing))
    if args.json:
        dump_records(records, args.json)
    return render_table2(records)


COMMANDS = {
    "table1": _table1,
    "figure3": _figure3,
    "piecewise": _piecewise,
    "table2": _table2,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment", choices=[*COMMANDS, "all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small-benchmark configuration (minutes instead of hours)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all CPU cores; 1 = in-process)",
    )
    parser.add_argument(
        "--task-deadline", type=float, default=None, metavar="SECONDS",
        help="kill any single task exceeding this wall-clock budget "
        "(pooled mode only)",
    )
    parser.add_argument(
        "--eq-smt-deadline", type=float, default=60.0,
        help="wall-clock budget (s) for the exact eq-smt method",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="also dump raw records to this JSON file",
    )
    parser.add_argument(
        "--record", type=str, default=None, metavar="DIR",
        help="save rendered output to DIR/<experiment>_full|_quick.txt",
    )
    parser.add_argument(
        "--bench", type=str, default="BENCH_experiments.json", metavar="PATH",
        help="per-task timing artifact (merged per experiment)",
    )
    parser.add_argument(
        "--no-bench", action="store_true",
        help="skip writing the timing artifact",
    )
    args = parser.parse_args(argv)
    chosen = list(COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in chosen:
        if args.experiment == "all":
            print(f"\n=== {name} ===")
        timing = None if args.no_bench else TimingCollector()
        started = time.perf_counter()
        text = COMMANDS[name](args, timing)
        elapsed = time.perf_counter() - started
        if timing is not None:
            write_bench(
                args.bench, name, timing,
                jobs=resolve_jobs(args.jobs), quick=args.quick,
                total_wall_s=elapsed,
            )
        print(text)
        if args.record:
            suffix = "quick" if args.quick else "full"
            path = pathlib.Path(args.record) / f"{name}_{suffix}.txt"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
