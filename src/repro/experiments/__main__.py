"""Command-line entry point for the experiment drivers.

``--quick`` restricts every experiment to the small benchmarks so the
whole sweep finishes in a few minutes; the full configuration mirrors
the paper's grid (and takes correspondingly longer, dominated by the
``eq-smt`` deadline and the ICP validators). ``--record DIR`` saves
each experiment's rendered output as ``<experiment>_full.txt`` (or
``_quick``), the files EXPERIMENTS.md references.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .figure3 import render_figure3, run_figure3
from .piecewise import render_piecewise, run_piecewise
from .records import dump_records
from .table1 import render_sweep, render_table1, rounding_sweep, run_table1
from .table2 import render_table2, run_table2


def _table1(args) -> str:
    sizes = (3, 5) if args.quick else (3, 5, 10, 15, 18)
    deadline = 5.0 if args.quick else args.eq_smt_deadline
    records, candidates = run_table1(
        sizes=sizes, eq_smt_deadline=deadline, keep_candidates=True
    )
    text = render_table1(records)
    sweep = rounding_sweep(candidates)
    text += "\n\n" + render_sweep(sweep)
    if args.json:
        dump_records(records, args.json)
    return text


def _figure3(args) -> str:
    sizes = (3, 5) if args.quick else (3, 5, 10, 15, 18)
    records = run_figure3(sizes=sizes)
    if args.json:
        dump_records(records, args.json)
    return render_figure3(records)


def _piecewise(args) -> str:
    names = ("size3",) if args.quick else ("size3", "size5")
    iterations = 6_000 if args.quick else 20_000
    records = run_piecewise(case_names=names, max_iterations=iterations)
    if args.json:
        dump_records(records, args.json)
    return render_piecewise(records)


def _table2(args) -> str:
    names = ("size3", "size5") if args.quick else ("size15", "size18")
    records = run_table2(case_names=names)
    if args.json:
        dump_records(records, args.json)
    return render_table2(records)


COMMANDS = {
    "table1": _table1,
    "figure3": _figure3,
    "piecewise": _piecewise,
    "table2": _table2,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment", choices=[*COMMANDS, "all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small-benchmark configuration (minutes instead of hours)",
    )
    parser.add_argument(
        "--eq-smt-deadline", type=float, default=60.0,
        help="wall-clock budget (s) for the exact eq-smt method",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="also dump raw records to this JSON file",
    )
    parser.add_argument(
        "--record", type=str, default=None, metavar="DIR",
        help="save rendered output to DIR/<experiment>_full|_quick.txt",
    )
    args = parser.parse_args(argv)
    chosen = list(COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in chosen:
        if args.experiment == "all":
            print(f"\n=== {name} ===")
        text = COMMANDS[name](args)
        print(text)
        if args.record:
            suffix = "quick" if args.quick else "full"
            path = pathlib.Path(args.record) / f"{name}_{suffix}.txt"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
