"""Table I driver: synthesis and validation of single-mode Lyapunov
functions across the benchmark ladder.

For every benchmark case (size x integer-variant), each operating mode,
and each synthesis method/backend: synthesize a candidate (``eq-smt``
under a wall-clock deadline, like the paper's 2 h limit scaled down),
round it at 10 significant figures, and validate both Lyapunov
conditions exactly. The renderer aggregates per size, matching the
paper's layout: average synthesis time and "validated / total" ratio.

``rounding_sweep`` reruns validation of the same candidates at 6 and 4
significant figures, reproducing the paper's robustness observation
(more aggressive rounding breaks validity; ``LMIalpha`` candidates
survive best).
"""

from __future__ import annotations

from collections import defaultdict

from ..engine import MODES, benchmark_suite
from ..lyapunov import SynthesisTimeout, synthesize
from ..sdp import LmiInfeasibleError
from ..validate import validate_candidate
from .records import MethodKey, Table1Record, method_rows, render_grid

__all__ = ["run_table1", "render_table1", "rounding_sweep", "render_sweep"]


def run_table1(
    sizes: tuple[int, ...] = (3, 5, 10, 15, 18),
    integer_sizes: tuple[int, ...] = (3, 5, 10),
    methods: list[MethodKey] | None = None,
    eq_smt_deadline: float = 60.0,
    validator: str = "sylvester",
    sigfigs: int = 10,
    keep_candidates: bool = False,
) -> tuple[list[Table1Record], dict]:
    """Run the full synthesis+validation grid.

    Returns the records plus (when ``keep_candidates``) a dict mapping
    ``(case, mode, method, backend)`` to the synthesized candidate —
    reused by the Figure 3 driver so the timing comparison runs on the
    *same* candidates.
    """
    if methods is None:
        methods = method_rows()
    records: list[Table1Record] = []
    candidates: dict = {}
    for case in benchmark_suite(sizes=sizes, integer_sizes=integer_sizes):
        for mode in MODES:
            a = case.mode_matrix(mode)
            for key in methods:
                record, candidate = _run_one(
                    case, mode, a, key, eq_smt_deadline, validator, sigfigs
                )
                records.append(record)
                if keep_candidates and candidate is not None:
                    candidates[
                        (case.name, mode, key.method, key.backend)
                    ] = candidate
    return records, candidates


def _run_one(case, mode, a, key, eq_smt_deadline, validator, sigfigs):
    try:
        candidate = synthesize(
            key.method,
            a,
            backend=key.backend or "ipm",
            deadline=eq_smt_deadline if key.method == "eq-smt" else None,
        )
    except SynthesisTimeout:
        return Table1Record(
            case=case.name, size=case.size, mode=mode,
            method=key.method, backend=key.backend,
            synth_time=None, synth_status="timeout",
            valid=None, validation_time=None, sigfigs=sigfigs,
        ), None
    except (LmiInfeasibleError, ValueError):
        return Table1Record(
            case=case.name, size=case.size, mode=mode,
            method=key.method, backend=key.backend,
            synth_time=None, synth_status="infeasible",
            valid=None, validation_time=None, sigfigs=sigfigs,
        ), None
    report = validate_candidate(
        candidate, a, sigfigs=sigfigs, validator=validator
    )
    return Table1Record(
        case=case.name, size=case.size, mode=mode,
        method=key.method, backend=key.backend,
        synth_time=candidate.synthesis_time, synth_status="ok",
        valid=report.valid, validation_time=report.total_time,
        sigfigs=sigfigs,
    ), candidate


def render_table1(records: list[Table1Record]) -> str:
    """Aggregate to the paper's layout: per (method, backend) row and per
    size column, 'avg synth time' and 'valid ratio'."""
    sizes = sorted({r.size for r in records})
    grouped: dict = defaultdict(list)
    for r in records:
        grouped[(r.method, r.backend, r.size)].append(r)
    headers = ["method", "solver"]
    for size in sizes:
        headers += [f"s{size} synth", f"s{size} valid"]
    rows = []
    seen_keys = []
    for r in records:
        key = (r.method, r.backend)
        if key not in seen_keys:
            seen_keys.append(key)
    for method, backend in seen_keys:
        row = [method, backend or "-"]
        for size in sizes:
            bucket = grouped.get((method, backend, size), [])
            ok_times = [
                b.synth_time for b in bucket if b.synth_time is not None
            ]
            if not bucket:
                row += ["-", "-"]
                continue
            if not ok_times:
                row += ["TO", f"0/{len(bucket)}"]
                continue
            avg = sum(ok_times) / len(ok_times)
            n_valid = sum(1 for b in bucket if b.valid is True)
            row += [f"{avg:.3g}", f"{n_valid}/{len(bucket)}"]
        rows.append(row)
    return render_grid(
        headers, rows,
        title="Table I — synthesis and validation of Lyapunov functions",
    )


def rounding_sweep(
    candidates: dict,
    sigfig_levels: tuple[int, ...] = (10, 6, 4),
    validator: str = "sylvester",
) -> list[Table1Record]:
    """Re-validate stored candidates at several rounding precisions."""
    from ..engine import case_by_name

    records = []
    for (case_name, mode, method, backend), candidate in candidates.items():
        case = case_by_name(case_name)
        a = case.mode_matrix(mode)
        for sigfigs in sigfig_levels:
            report = validate_candidate(
                candidate, a, sigfigs=sigfigs, validator=validator
            )
            records.append(
                Table1Record(
                    case=case_name, size=case.size, mode=mode,
                    method=method, backend=backend,
                    synth_time=candidate.synthesis_time, synth_status="ok",
                    valid=report.valid, validation_time=report.total_time,
                    sigfigs=sigfigs,
                )
            )
    return records


def render_sweep(records: list[Table1Record]) -> str:
    """Invalid-candidate counts per rounding level and per method."""
    levels = sorted({r.sigfigs for r in records}, reverse=True)
    methods = []
    for r in records:
        key = (r.method, r.backend)
        if key not in methods:
            methods.append(key)
    headers = ["method", "solver"] + [f"invalid@{lvl}sf" for lvl in levels]
    rows = []
    for method, backend in methods:
        row = [method, backend or "-"]
        for level in levels:
            bucket = [
                r for r in records
                if (r.method, r.backend, r.sigfigs) == (method, backend, level)
            ]
            row.append(str(sum(1 for r in bucket if r.valid is False)))
        rows.append(row)
    totals = ["TOTAL", ""]
    for level in levels:
        totals.append(
            str(sum(1 for r in records if r.sigfigs == level and r.valid is False))
        )
    rows.append(totals)
    return render_grid(
        headers, rows, title="Rounding-precision sweep (invalid candidates)"
    )
