"""Table I driver: synthesis and validation of single-mode Lyapunov
functions across the benchmark ladder.

For every benchmark case (size x integer-variant), each operating mode,
and each synthesis method/backend: synthesize a candidate (``eq-smt``
under a wall-clock deadline, like the paper's 2 h limit scaled down),
round it at 10 significant figures, and validate both Lyapunov
conditions exactly. The grid is enumerated as picklable tasks and
submitted through :mod:`repro.runner` (``jobs`` worker processes;
``jobs=1`` runs in-process); results come back in submission order, so
parallel runs render identically to serial ones. The renderer
aggregates per size, matching the paper's layout: average synthesis
time and "validated / total" ratio.

``rounding_sweep`` reruns validation of the same candidates at 6 and 4
significant figures, reproducing the paper's robustness observation
(more aggressive rounding breaks validity; ``LMIalpha`` candidates
survive best). Levels already covered by the Table I records
(``base_records``) are reused instead of re-validated.
"""

from __future__ import annotations

from collections import defaultdict

from ..engine import MODES, benchmark_suite, case_by_name
from .records import MethodKey, Table1Record, method_rows, render_grid

__all__ = ["run_table1", "render_table1", "rounding_sweep", "render_sweep"]


def run_table1(
    sizes: tuple[int, ...] = (3, 5, 10, 15, 18),
    integer_sizes: tuple[int, ...] = (3, 5, 10),
    methods: list[MethodKey] | None = None,
    eq_smt_deadline: float = 60.0,
    validator: str = "sylvester",
    sigfigs: int = 10,
    keep_candidates: bool = False,
    jobs: int | None = 1,
    task_deadline: float | None = None,
    timing=None,
    journal=None,
    retry=None,
    stats=None,
    shards=None,
    fallback: bool = True,
    engine=None,
) -> tuple[list[Table1Record], dict]:
    """Run the full synthesis+validation grid.

    Returns the records plus (when ``keep_candidates``) a dict mapping
    ``(case, mode, method, backend)`` to the synthesized candidate —
    reused by the Figure 3 driver so the timing comparison runs on the
    *same* candidates. ``jobs`` fans the grid out over worker processes
    (``None`` = all cores); ``task_deadline`` is an optional per-task
    wall-clock kill; ``timing`` is an optional
    :class:`repro.runner.TimingCollector`. ``journal``/``retry``/
    ``stats`` make the campaign resumable (see :mod:`repro.runner`);
    ``fallback=False`` disarms the validator degradation chains. An
    explicit ``engine`` (:class:`repro.service.CampaignEngine`)
    supersedes the individual runner knobs.
    """
    # Imported lazily: the runner's task specs import this package's
    # records module (see repro.runner.tasks).
    from ..runner import Table1Task
    from ..service.engine import CampaignEngine

    if methods is None:
        methods = method_rows()
    tasks = [
        Table1Task(
            case_name=case.name, size=case.size, mode=mode,
            method=key.method, backend=key.backend,
            eq_smt_deadline=eq_smt_deadline, validator=validator,
            sigfigs=sigfigs, keep_candidate=keep_candidates,
            fallback=fallback,
        )
        for case in benchmark_suite(sizes=sizes, integer_sizes=integer_sizes)
        for mode in MODES
        for key in methods
    ]
    outcomes = CampaignEngine.ensure(
        engine, jobs=jobs, task_deadline=task_deadline, timing=timing,
        journal=journal, retry=retry, stats=stats, shards=shards,
    ).run(tasks)
    records: list[Table1Record] = []
    candidates: dict = {}
    for task, outcome in zip(tasks, outcomes):
        record, candidate = outcome
        records.append(record)
        if keep_candidates and candidate is not None:
            candidates[
                (task.case_name, task.mode, task.method, task.backend)
            ] = candidate
    return records, candidates


def render_table1(records: list[Table1Record]) -> str:
    """Aggregate to the paper's layout: per (method, backend) row and per
    size column, 'avg synth time' and 'valid ratio'."""
    sizes = sorted({r.size for r in records})
    grouped: dict = defaultdict(list)
    for r in records:
        grouped[(r.method, r.backend, r.size)].append(r)
    headers = ["method", "solver"]
    for size in sizes:
        headers += [f"s{size} synth", f"s{size} valid"]
    rows = []
    seen_keys = dict.fromkeys((r.method, r.backend) for r in records)
    for method, backend in seen_keys:
        row = [method, backend or "-"]
        for size in sizes:
            bucket = grouped.get((method, backend, size), [])
            ok_times = [
                b.synth_time for b in bucket if b.synth_time is not None
            ]
            if not bucket:
                row += ["-", "-"]
                continue
            if not ok_times:
                row += ["TO", f"0/{len(bucket)}"]
                continue
            avg = sum(ok_times) / len(ok_times)
            n_valid = sum(1 for b in bucket if b.valid is True)
            row += [f"{avg:.3g}", f"{n_valid}/{len(bucket)}"]
        rows.append(row)
    return render_grid(
        headers, rows,
        title="Table I — synthesis and validation of Lyapunov functions",
    )


def rounding_sweep(
    candidates: dict,
    sigfig_levels: tuple[int, ...] = (10, 6, 4),
    validator: str = "sylvester",
    base_records: list[Table1Record] | None = None,
    jobs: int | None = 1,
    timing=None,
    journal=None,
    retry=None,
    stats=None,
    shards=None,
    fallback: bool = True,
    engine=None,
) -> list[Table1Record]:
    """Re-validate stored candidates at several rounding precisions.

    ``base_records`` lets the caller hand over validations already
    computed (the Table I grid validates at 10 significant figures):
    any ``(candidate, level)`` pair covered by a matching successful
    base record is reused instead of re-validated, so only the
    remaining levels actually run.
    """
    from ..runner import RevalidateTask
    from ..service.engine import CampaignEngine

    reuse: dict = {}
    for record in base_records or ():
        if record.synth_status == "ok":
            reuse[
                (record.case, record.mode, record.method, record.backend,
                 record.sigfigs)
            ] = record
    tasks = []
    task_index: dict = {}
    for (case_name, mode, method, backend), candidate in candidates.items():
        for sigfigs in sigfig_levels:
            key = (case_name, mode, method, backend, sigfigs)
            if key in reuse:
                continue
            task_index[key] = len(tasks)
            tasks.append(
                RevalidateTask(
                    case_name=case_name, size=case_by_name(case_name).size,
                    mode=mode, method=method, backend=backend,
                    candidate=candidate, sigfigs=sigfigs, validator=validator,
                    fallback=fallback,
                )
            )
    outcomes = CampaignEngine.ensure(
        engine, jobs=jobs, timing=timing,
        journal=journal, retry=retry, stats=stats, shards=shards,
    ).run(tasks)
    records = []
    for (case_name, mode, method, backend), _candidate in candidates.items():
        for sigfigs in sigfig_levels:
            key = (case_name, mode, method, backend, sigfigs)
            if key in reuse:
                records.append(reuse[key])
            else:
                records.append(outcomes[task_index[key]])
    return records


def render_sweep(records: list[Table1Record]) -> str:
    """Invalid-candidate counts per rounding level and per method."""
    levels = sorted({r.sigfigs for r in records}, reverse=True)
    methods = list(dict.fromkeys((r.method, r.backend) for r in records))
    headers = ["method", "solver"] + [f"invalid@{lvl}sf" for lvl in levels]
    rows = []
    for method, backend in methods:
        row = [method, backend or "-"]
        for level in levels:
            bucket = [
                r for r in records
                if (r.method, r.backend, r.sigfigs) == (method, backend, level)
            ]
            row.append(str(sum(1 for r in bucket if r.valid is False)))
        rows.append(row)
    totals = ["TOTAL", ""]
    for level in levels:
        totals.append(
            str(sum(1 for r in records if r.sigfigs == level and r.valid is False))
        )
    rows.append(totals)
    return render_grid(
        headers, rows, title="Rounding-precision sweep (invalid candidates)"
    )
