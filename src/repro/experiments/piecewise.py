"""Section VI-B.2 driver: piecewise-quadratic synthesis for the switched
system, with both surface encodings, followed by exact validation.

Expected reproduction shape (and what the paper reports): the LMI
machinery always produces a *candidate*, but exact validation of the
switching-surface non-increase condition fails every time. Our run adds
one diagnosis the paper could not make: the deep-cut ellipsoid method
*proves* the LMI systems infeasible for the case-study references —
both operating modes have locally stable equilibria inside their own
regions, so no global piecewise-quadratic certificate can exist.
"""

from __future__ import annotations

from ..engine import case_by_name
from ..lyapunov import ENCODINGS
from .records import PiecewiseRecord, render_grid

__all__ = ["run_piecewise", "render_piecewise"]


def run_piecewise(
    case_names: tuple[str, ...] = ("size3", "size5"),
    encodings: tuple[str, ...] = ENCODINGS,
    max_iterations: int = 20_000,
    max_boxes: int = 6_000,
    conditions_scope: str = "surface",
    solver: str = "hybrid",
    oracle_batch: bool = True,
    icp_backend: str = "auto",
    jobs: int | None = 1,
    task_deadline: float | None = None,
    timing=None,
    journal=None,
    retry=None,
    stats=None,
    shards=None,
    engine=None,
) -> list[PiecewiseRecord]:
    """Run the synthesis+validation grid.

    ``solver`` picks the synthesis pipeline per task (``"hybrid"`` =
    tensorized ellipsoid burn-in + warm-started barrier polish,
    ``"ellipsoid"`` = certifying deep-cut method alone, ``"barrier"`` =
    level-shift candidate finder); ``oracle_batch=False`` falls back to
    the per-block differential separation oracle. ``icp_backend``
    selects the validation refuter engine (``"auto"|"scalar"|"batched"``).
    An explicit ``engine`` supersedes the individual runner knobs.
    """
    from ..runner import PiecewiseTask
    from ..service.engine import CampaignEngine

    tasks = [
        PiecewiseTask(
            case_name=name, size=case_by_name(name).size, encoding=encoding,
            max_iterations=max_iterations, max_boxes=max_boxes,
            conditions_scope=conditions_scope,
            solver=solver, oracle_batch=oracle_batch,
            icp_backend=icp_backend,
        )
        for name in case_names
        for encoding in encodings
    ]
    return CampaignEngine.ensure(
        engine, jobs=jobs, task_deadline=task_deadline, timing=timing,
        journal=journal, retry=retry, stats=stats, shards=shards,
    ).run(tasks)


def render_piecewise(records: list[PiecewiseRecord]) -> str:
    headers = [
        "case", "encoding", "solver", "candidate", "LMI verdict",
        "synth (s)", "validation", "failed conditions",
    ]
    rows = []
    for r in records:
        if r.lmi_feasible:
            verdict = "tolerance-feasible"
        elif r.proved_infeasible:
            verdict = "proved infeasible"
        else:
            verdict = "budget exhausted"
        rows.append(
            [
                r.case,
                r.encoding,
                r.solver,
                "best iterate",
                verdict,
                f"{r.synth_time:.3g}",
                {True: "VALID", False: "FAILED", None: "undecided"}[
                    r.validation_valid
                ],
                ", ".join(r.failed_conditions) or "-",
            ]
        )
    return render_grid(
        headers,
        rows,
        title=(
            "Piecewise-quadratic synthesis for the switched system "
            "(Sec. VI-B.2)"
        ),
    )
