"""CEGIS driver: the refinement loop the paper's Section VI-B.2 lacked.

The piecewise experiment (:mod:`repro.experiments.piecewise`) ends
where the paper ends: candidates always exist, exact validation always
fails, and the ellipsoid method proves *why* (the nominal references
are bistable). This driver runs the counterexample-guided loop of
:mod:`repro.lyapunov.cegis` over both reference regimes:

* ``nominal`` — the paper's references; the certifying synthesizer
  proves the LMI infeasible at iteration 0 with zero cuts (the pinned
  negative result, now a one-row regression);
* ``attracting`` — references with the guard margin pushed negative
  (:data:`repro.engine.ATTRACTING_MARGIN`), where the loop converges
  to SMT/ICP-validated certificates on the reduced models.

Each row reports the loop status, round/cut counts, phase timings and
the deterministic provenance digest (the CI smoke job golden-diffs it).
"""

from __future__ import annotations

from ..engine import case_by_name
from .records import CegisRecord, render_grid

__all__ = ["run_cegis", "render_cegis", "DEFAULT_GRID"]

#: (regime, synthesis) cells of the default experiment grid. The
#: sampled loop only runs at the attracting regime — at the nominal one
#: the sampled relaxation is feasible but no certificate exists, so the
#: loop would spin its full budget refuting snapshots of an empty set;
#: the full-matrix row already proves that emptiness in round 1.
DEFAULT_GRID = (
    ("nominal", "full"),
    ("attracting", "full"),
    ("attracting", "sampled"),
)


def run_cegis(
    case_names: tuple[str, ...] = ("size3", "size5"),
    grid: tuple = DEFAULT_GRID,
    snap: str = "structured",
    max_rounds: int = 40,
    max_iterations: int = 30_000,
    verify_max_boxes: int = 20_000,
    refute: bool = False,
    icp_backend: str = "auto",
    jobs: int | None = 1,
    task_deadline: float | None = None,
    timing=None,
    journal=None,
    retry=None,
    stats=None,
    shards=None,
    engine=None,
) -> list[CegisRecord]:
    """Run the CEGIS grid as a resumable/sharded campaign.

    Every ``(case, regime, synthesis)`` cell is one
    :class:`~repro.runner.CegisTask`; an explicit ``engine`` supersedes
    the individual runner knobs (same contract as the other drivers).
    """
    from ..runner import CegisTask
    from ..service.engine import CampaignEngine

    tasks = [
        CegisTask(
            case_name=name, size=case_by_name(name).size,
            regime=regime, synthesis=synthesis, snap=snap,
            max_rounds=max_rounds, max_iterations=max_iterations,
            verify_max_boxes=verify_max_boxes, refute=refute,
            icp_backend=icp_backend,
        )
        for name in case_names
        for regime, synthesis in grid
    ]
    return CampaignEngine.ensure(
        engine, jobs=jobs, task_deadline=task_deadline, timing=timing,
        journal=journal, retry=retry, stats=stats, shards=shards,
    ).run(tasks)


def render_cegis(records: list[CegisRecord]) -> str:
    headers = [
        "case", "regime", "synthesis", "status", "rounds", "cuts",
        "synth (s)", "verify (s)", "failed checks", "digest",
    ]
    rows = []
    for r in records:
        rows.append(
            [
                r.case,
                r.regime,
                r.synthesis,
                r.status.upper() if r.validated else r.status,
                r.rounds,
                r.cuts,
                f"{r.synth_time:.3g}",
                f"{r.verify_time:.3g}",
                ", ".join(r.failed_checks) or "-",
                r.digest[:12] if r.digest else "-",
            ]
        )
    return render_grid(
        headers,
        rows,
        title=(
            "CEGIS piecewise certificates "
            "(counterexample-guided refinement of Sec. VI-B.2)"
        ),
    )
