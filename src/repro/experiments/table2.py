"""Table II driver: robust-region synthesis and perturbation radii.

For each of the largest benchmarks (sizes 15 and 18 in the paper), each
operating mode, and every *numerical* synthesis method (``eq-smt`` is
excluded, as in the paper): synthesize a Lyapunov candidate, validate it
exactly, and when valid compute

* the robust level ``k_i`` (exact QP on the switching surface),
* the volume of the truncated ellipsoid ``W_i`` ("vol" column),
* the reference-perturbation radius ``epsilon_i``.

Invalid candidates produce dash entries — the paper's Table II has the
same holes (LMIalpha+/Mosek at size 18).
"""

from __future__ import annotations

import time

import numpy as np

from ..engine import MODES, case_by_name, mode_gains
from ..exact import RationalMatrix, solve_vector, to_fraction
from ..lyapunov import synthesize
from ..robust import (
    EpsilonInputs,
    epsilon_radius,
    log10_truncated_ellipsoid_volume,
    surface_geometry,
    synthesize_robust_level,
    truncated_ellipsoid_volume,
)
from ..sdp import LmiInfeasibleError
from ..systems import closed_loop_matrices
from ..validate import validate_candidate
from .records import MethodKey, Table2Record, method_rows, render_grid

__all__ = ["run_table2", "render_table2"]


def run_table2(
    case_names: tuple[str, ...] = ("size15", "size18"),
    methods: list[MethodKey] | None = None,
    sigfigs: int = 10,
    validator: str = "sylvester",
) -> list[Table2Record]:
    if methods is None:
        methods = method_rows(include_eq_smt=False)
    records: list[Table2Record] = []
    for name in case_names:
        case = case_by_name(name)
        r = case.reference()
        system = case.switched_system(r)
        for mode in MODES:
            flow = system.modes[mode].flow
            halfspace = system.modes[mode].region.halfspaces[0]
            a_exact = RationalMatrix.from_numpy(flow.a)
            w_eq = solve_vector(
                a_exact, [-to_fraction(x) for x in flow.b.tolist()]
            )
            w_eq_float = np.array([float(x) for x in w_eq])
            _, b_cl = closed_loop_matrices(case.plant, mode_gains(mode))
            geometry = surface_geometry(halfspace, flow)
            for key in methods:
                records.append(
                    _run_one(
                        case, mode, key, flow, halfspace, w_eq, w_eq_float,
                        b_cl, geometry, sigfigs, validator,
                    )
                )
    return records


def _run_one(
    case, mode, key, flow, halfspace, w_eq, w_eq_float, b_cl, geometry,
    sigfigs, validator,
):
    base = dict(
        case=case.name, size=case.size, mode=mode,
        method=key.method, backend=key.backend,
    )
    try:
        candidate = synthesize(
            key.method, flow.a, backend=key.backend or "ipm"
        )
    except (LmiInfeasibleError, ValueError):
        return Table2Record(
            **base, time=None, volume=None, log10_volume=None,
            epsilon=None, k=None, region_case=None,
            skipped_reason="synthesis failed",
        )
    report = validate_candidate(
        candidate, flow.a, sigfigs=sigfigs, validator=validator
    )
    if report.valid is not True:
        # The paper leaves such cells empty (e.g. LMIalpha+/Mosek, size 18).
        return Table2Record(
            **base, time=None, volume=None, log10_volume=None,
            epsilon=None, k=None, region_case=None,
            skipped_reason="candidate not validated",
        )
    start = time.perf_counter()
    p_exact = candidate.exact_p(sigfigs)
    region = synthesize_robust_level(flow, halfspace, p_exact, w_eq=w_eq)
    elapsed = time.perf_counter() - start
    if not region.bounded:
        return Table2Record(
            **base, time=elapsed, volume=float("inf"),
            log10_volume=float("inf"), epsilon=_epsilon(
                flow, b_cl, candidate.p, float("inf"), w_eq_float, geometry
            ),
            k=float("inf"), region_case=region.case,
        )
    k_float = region.k_float()
    normal = halfspace.normal_float()
    volume = truncated_ellipsoid_volume(
        candidate.p, k_float, w_eq_float, normal, float(halfspace.offset)
    )
    log_volume = log10_truncated_ellipsoid_volume(
        candidate.p, k_float, w_eq_float, normal, float(halfspace.offset)
    )
    epsilon = _epsilon(
        flow, b_cl, candidate.p, k_float, w_eq_float, geometry
    )
    return Table2Record(
        **base, time=elapsed, volume=volume, log10_volume=log_volume,
        epsilon=epsilon, k=k_float, region_case=region.case,
    )


def _epsilon(flow, b_cl, p, k, w_eq_float, geometry):
    inputs = EpsilonInputs(
        flow_a=flow.a, b_cl=b_cl, p=p,
        k=min(k, 1e300), w_eq=w_eq_float, geometry=geometry,
    )
    return epsilon_radius(inputs)


def render_table2(records: list[Table2Record]) -> str:
    headers = [
        "case", "mode", "method", "solver",
        "time (s)", "k", "vol", "eps", "qp-case",
    ]
    rows = []
    for r in records:
        if r.skipped_reason:
            rows.append(
                [r.case, str(r.mode), r.method, r.backend or "-",
                 "-", "-", "-", "-", r.skipped_reason]
            )
            continue
        rows.append(
            [
                r.case, str(r.mode), r.method, r.backend or "-",
                f"{r.time:.3g}",
                f"{r.k:.3g}",
                f"{r.volume:.2g}",
                f"{r.epsilon:.2g}",
                r.region_case,
            ]
        )
    return render_grid(
        headers, rows,
        title="Table II — synthesis of robust regions",
    )
