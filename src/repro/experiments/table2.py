"""Table II driver: robust-region synthesis and perturbation radii.

For each of the largest benchmarks (sizes 15 and 18 in the paper), each
operating mode, and every *numerical* synthesis method (``eq-smt`` is
excluded, as in the paper): synthesize a Lyapunov candidate, validate it
exactly, and when valid compute

* the robust level ``k_i`` (exact QP on the switching surface),
* the volume of the truncated ellipsoid ``W_i`` ("vol" column),
* the reference-perturbation radius ``epsilon_i``.

Invalid candidates produce dash entries — the paper's Table II has the
same holes (LMIalpha+/Mosek at size 18).
"""

from __future__ import annotations

from ..engine import MODES, case_by_name
from .records import MethodKey, Table2Record, method_rows, render_grid

__all__ = ["run_table2", "render_table2"]


def run_table2(
    case_names: tuple[str, ...] = ("size15", "size18"),
    methods: list[MethodKey] | None = None,
    sigfigs: int = 10,
    validator: str = "sylvester",
    jobs: int | None = 1,
    task_deadline: float | None = None,
    timing=None,
    journal=None,
    retry=None,
    stats=None,
    shards=None,
    fallback: bool = True,
    engine=None,
) -> list[Table2Record]:
    """One runner task per (case, mode, method) cell; the shared
    per-(case, mode) geometry (switching surface, exact equilibrium) is
    rebuilt once per worker process (see
    :func:`repro.runner.tasks._table2_context`). An explicit ``engine``
    supersedes the individual runner knobs."""
    from ..runner import Table2Task
    from ..service.engine import CampaignEngine

    if methods is None:
        methods = method_rows(include_eq_smt=False)
    tasks = [
        Table2Task(
            case_name=name, size=case_by_name(name).size, mode=mode,
            method=key.method, backend=key.backend,
            sigfigs=sigfigs, validator=validator, fallback=fallback,
        )
        for name in case_names
        for mode in MODES
        for key in methods
    ]
    return CampaignEngine.ensure(
        engine, jobs=jobs, task_deadline=task_deadline, timing=timing,
        journal=journal, retry=retry, stats=stats, shards=shards,
    ).run(tasks)


def render_table2(records: list[Table2Record]) -> str:
    headers = [
        "case", "mode", "method", "solver",
        "time (s)", "k", "vol", "eps", "qp-case",
    ]
    rows = []
    for r in records:
        if r.skipped_reason:
            rows.append(
                [r.case, str(r.mode), r.method, r.backend or "-",
                 "-", "-", "-", "-", r.skipped_reason]
            )
            continue
        rows.append(
            [
                r.case, str(r.mode), r.method, r.backend or "-",
                f"{r.time:.3g}",
                f"{r.k:.3g}",
                f"{r.volume:.2g}",
                f"{r.epsilon:.2g}",
                r.region_case,
            ]
        )
    return render_grid(
        headers, rows,
        title="Table II — synthesis of robust regions",
    )
