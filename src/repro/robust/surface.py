"""Switching-surface geometry for the robustness analysis (Section VI-C).

For a mode with region ``{g . w + o >= 0}`` and affine flow
``w' = A w + b``, the quantities that drive the robust-region synthesis:

* the *inward derivative* ``g . (A w + b)`` on the surface — positive
  means the flow re-enters the region;
* the projection ``p`` of the derivative's gradient onto the surface —
  ``p = 0`` is the paper's special case where the derivative is constant
  along the surface and the robust region is the whole region.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..exact import RationalMatrix, to_fraction
from ..systems import AffineSystem, HalfSpace

__all__ = ["SurfaceGeometry", "surface_geometry"]


@dataclass(frozen=True)
class SurfaceGeometry:
    """Exact surface data for one mode."""

    normal: tuple  # g (Fractions)
    offset: Fraction  # o, surface = {g . w + o = 0}
    derivative_row: tuple  # g^T A
    derivative_offset: Fraction  # g . b
    tangential_gradient: tuple  # projection of A^T g onto g-perp
    constant_on_surface: bool

    def inward_derivative(self, w) -> Fraction:
        """``g . (A w + b)`` at an exact point."""
        return (
            sum(
                (c * to_fraction(x) for c, x in zip(self.derivative_row, w)),
                Fraction(0),
            )
            + self.derivative_offset
        )

    def distance_to_surface(self, w) -> float:
        """Euclidean distance from a (float) point to the surface."""
        g = np.array([float(x) for x in self.normal])
        value = float(g @ np.asarray(w, dtype=float)) + float(self.offset)
        return abs(value) / float(np.linalg.norm(g))


def surface_geometry(halfspace: HalfSpace, flow: AffineSystem) -> SurfaceGeometry:
    """Exact geometry of one mode's switching surface under its flow."""
    a = RationalMatrix.from_numpy(flow.a)
    b = [to_fraction(x) for x in flow.b.tolist()]
    g = list(halfspace.normal)
    # row = g^T A;   g . b
    row = [
        sum((g[k] * a[k, j] for k in range(a.rows)), Fraction(0))
        for j in range(a.cols)
    ]
    g_dot_b = sum((c * x for c, x in zip(g, b)), Fraction(0))
    # Tangential part of the gradient A^T g: subtract the g-component.
    g_norm_sq = sum((x * x for x in g), Fraction(0))
    projection_coeff = (
        sum((r * x for r, x in zip(row, g)), Fraction(0)) / g_norm_sq
    )
    tangential = tuple(r - projection_coeff * x for r, x in zip(row, g))
    constant = all(t == 0 for t in tangential)
    return SurfaceGeometry(
        normal=tuple(g),
        offset=halfspace.offset,
        derivative_row=tuple(row),
        derivative_offset=g_dot_b,
        tangential_gradient=tangential,
        constant_on_surface=constant,
    )
