"""Region stability certificates (related work [Podelski & Wagner 2007]).

*Region stability* asks that every trajectory eventually enters — and
forever stays in — a designated region, without requiring convergence
to a point. For a mode with a validated exponential Lyapunov function
this follows constructively from two facts:

* every sublevel set ``{V <= k}`` is forward invariant (``V' < 0`` on
  its boundary), and
* ``V' <= -alpha V`` forces ``V(t) <= V(0) e^{-alpha t}``, so the
  passage from ``{V <= k_outer}`` into ``{V <= k_inner}`` happens by

      T = ln(k_outer / k_inner) / alpha.

:func:`certify_region_stability` packages that argument with the decay
rate of a (validated) candidate; the certificate carries a concrete
time bound the tests check against simulation. This is the "wider set
of temporal properties" direction the paper's conclusion sketches,
instantiated for the eventually-always operator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..lyapunov.quadratic import LyapunovCandidate
from ..lyapunov.settling import settling_bound

__all__ = ["RegionStabilityCertificate", "certify_region_stability"]


@dataclass(frozen=True)
class RegionStabilityCertificate:
    """``from {V <= k_outer}, within time_bound, always in {V <= k_inner}``."""

    k_outer: float
    k_inner: float
    alpha: float
    time_bound: float

    def entered_by(self, v0: float, t: float) -> bool:
        """Does the certified envelope place ``V(t)`` inside ``k_inner``?"""
        return v0 * math.exp(-self.alpha * t) <= self.k_inner


def certify_region_stability(
    candidate: LyapunovCandidate,
    a: np.ndarray,
    k_outer: float,
    k_inner: float,
) -> RegionStabilityCertificate:
    """Build the eventually-always certificate for one mode.

    ``candidate`` must be a (validated) Lyapunov function for
    ``w' = A (w - w_eq)``; its decay rate comes from the ``lmi-alpha``
    annotation when present, else from the generalized eigenvalue pencil
    (see :func:`repro.lyapunov.settling.settling_bound`).
    """
    if not 0 < k_inner < k_outer:
        raise ValueError("need 0 < k_inner < k_outer")
    bound = settling_bound(candidate, a)
    time_bound = math.log(k_outer / k_inner) / bound.alpha
    return RegionStabilityCertificate(
        k_outer=float(k_outer),
        k_inner=float(k_inner),
        alpha=bound.alpha,
        time_bound=time_bound,
    )
