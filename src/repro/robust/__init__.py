"""Robustness-to-perturbation analysis (paper Section VI-C, Table II)."""

from .certificates import StabilityCertificate, certify_mode
from .epsilon import EpsilonInputs, epsilon_radius
from .montecarlo import MonteCarloReport, monte_carlo_epsilon_check
from .region_stability import RegionStabilityCertificate, certify_region_stability
from .regions import RobustRegion, check_level_robust_smt, synthesize_robust_level
from .surface import SurfaceGeometry, surface_geometry
from .volume import (
    cap_fraction,
    ellipsoid_volume,
    log10_truncated_ellipsoid_volume,
    truncated_ellipsoid_volume,
    unit_ball_volume,
)

__all__ = [
    "SurfaceGeometry",
    "surface_geometry",
    "RobustRegion",
    "synthesize_robust_level",
    "check_level_robust_smt",
    "unit_ball_volume",
    "cap_fraction",
    "ellipsoid_volume",
    "truncated_ellipsoid_volume",
    "log10_truncated_ellipsoid_volume",
    "EpsilonInputs",
    "epsilon_radius",
    "StabilityCertificate",
    "certify_mode",
    "MonteCarloReport",
    "monte_carlo_epsilon_check",
    "RegionStabilityCertificate",
    "certify_region_stability",
]
