"""Machine-checkable stability/robustness certificates.

A :class:`StabilityCertificate` bundles everything needed to *recheck* a
verified claim from scratch — the mode matrix, the rational Lyapunov
matrix, and (optionally) the robust level with its KKT minimizer — in a
JSON-serializable form where every number is an exact rational string.
``verify`` replays all the exact checks; round-tripping through JSON
changes nothing because no floats are involved.

This is the artefact a certification workflow would archive: the
verdict can be re-established years later without rerunning any
numerical synthesis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fractions import Fraction

from ..exact import (
    RationalMatrix,
    is_negative_definite,
    sylvester_positive_definite,
    to_fraction,
)
from ..systems import AffineSystem, HalfSpace
from .regions import synthesize_robust_level
from .surface import surface_geometry

__all__ = ["StabilityCertificate", "certify_mode"]


def _matrix_to_strings(matrix: RationalMatrix) -> list[list[str]]:
    return [[str(x) for x in row] for row in matrix.tolist()]


def _matrix_from_strings(data: list[list[str]]) -> RationalMatrix:
    return RationalMatrix([[Fraction(x) for x in row] for row in data])


@dataclass
class StabilityCertificate:
    """An exact, self-contained certificate for one operating mode."""

    a: RationalMatrix  # closed-loop mode matrix
    p: RationalMatrix  # Lyapunov matrix (exact, already rounded)
    b: list | None = None  # affine part (robust certificates only)
    surface_normal: list | None = None
    surface_offset: Fraction | None = None
    k: Fraction | None = None  # robust level (None = no region claim)
    provenance: dict | None = None

    # ------------------------------------------------------------------
    def verify(self) -> bool:
        """Replay every exact check; raises ``AssertionError`` on the
        first failure, returns ``True`` when the certificate holds."""
        assert self.p.is_symmetric(), "P must be symmetric"
        assert sylvester_positive_definite(self.p), "P is not PD"
        lie = (self.a.T @ self.p + self.p @ self.a).symmetrize()
        assert is_negative_definite(lie), "A^T P + P A is not ND"
        if self.k is not None:
            assert self.b is not None and self.surface_normal is not None
            flow = AffineSystem(
                self.a.to_numpy(), [float(x) for x in self.b]
            )
            halfspace = HalfSpace(
                tuple(self.surface_normal), self.surface_offset
            )
            region = synthesize_robust_level(flow, halfspace, self.p)
            assert region.bounded, "certificate claims a bounded level"
            assert region.k >= self.k, (
                f"claimed level {self.k} exceeds the exact optimum {region.k}"
            )
        return True

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "format": "repro-stability-certificate-v1",
            "a": _matrix_to_strings(self.a),
            "p": _matrix_to_strings(self.p),
            "provenance": self.provenance or {},
        }
        if self.k is not None:
            payload["b"] = [str(x) for x in self.b]
            payload["surface_normal"] = [str(x) for x in self.surface_normal]
            payload["surface_offset"] = str(self.surface_offset)
            payload["k"] = str(self.k)
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "StabilityCertificate":
        payload = json.loads(text)
        if payload.get("format") != "repro-stability-certificate-v1":
            raise ValueError("unknown certificate format")
        kwargs = dict(
            a=_matrix_from_strings(payload["a"]),
            p=_matrix_from_strings(payload["p"]),
            provenance=payload.get("provenance") or None,
        )
        if "k" in payload:
            kwargs.update(
                b=[Fraction(x) for x in payload["b"]],
                surface_normal=[Fraction(x) for x in payload["surface_normal"]],
                surface_offset=Fraction(payload["surface_offset"]),
                k=Fraction(payload["k"]),
            )
        return cls(**kwargs)


def certify_mode(
    flow: AffineSystem,
    halfspace: HalfSpace,
    p_exact: RationalMatrix,
    provenance: dict | None = None,
    safety_factor: Fraction = Fraction(999, 1000),
) -> StabilityCertificate:
    """Build (and self-verify) a robust-region certificate for one mode.

    The stored level is ``safety_factor`` times the exact optimum so the
    certificate survives re-derivation on platforms with different
    tie-breaking.
    """
    region = synthesize_robust_level(flow, halfspace, p_exact)
    a_exact = RationalMatrix.from_numpy(flow.a)
    b_exact = [to_fraction(x) for x in flow.b.tolist()]
    geometry = surface_geometry(halfspace, flow)
    certificate = StabilityCertificate(
        a=a_exact,
        p=p_exact,
        b=b_exact,
        surface_normal=list(geometry.normal),
        surface_offset=geometry.offset,
        k=None if region.k is None else region.k * safety_factor,
        provenance=provenance,
    )
    certificate.verify()
    return certificate
