"""Robust-region synthesis (paper Section VI-C.1).

For mode ``i`` with validated Lyapunov function
``V_i(w) = (w - w_eq)^T P_i (w - w_eq)``, find the largest level ``k_i``
such that every point of the switching surface with ``V_i <= k_i`` has
the flow pointing back *into* the region (condition 24). Then the
truncated ellipsoid ``W_i = {V_i <= k_i} ∩ R_i`` is invariant and all
its points converge to ``w_eq`` without a mode switch.

The level is the minimum of a positive-definite quadratic over

    {w : g.w + o = 0  and  g.(A w + b) <= 0},

a QP solved *exactly* over the rationals by KKT case analysis:

* if the surface-constrained minimizer already has an outward-pointing
  flow, it is the answer;
* otherwise the minimum sits on the boundary of the outward set, i.e.
  both constraints are active — a two-equality KKT solve.

The paper computed candidate levels numerically and certified them
(optimal up to 1e-3) with Mathematica; here the exact QP plays both
roles, and :func:`check_level_robust_smt` reproduces the SMT-style
certification query for cross-validation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction

from ..exact import RationalMatrix, solve, solve_vector, to_fraction
from ..smt import Atom, Box, IcpSolver, IcpStatus, Relation, Var, affine_term, quadratic_form_term
from ..systems import AffineSystem, HalfSpace
from .surface import SurfaceGeometry, surface_geometry

__all__ = ["RobustRegion", "synthesize_robust_level", "check_level_robust_smt"]


@dataclass
class RobustRegion:
    """The synthesized level ``k`` and its provenance.

    ``k is None`` encodes the paper's special case: the inward derivative
    is constant along the surface and positive, so the whole region is
    robust (no finite level truncates it).
    """

    k: Fraction | None
    minimizer: list | None
    case: str
    geometry: SurfaceGeometry
    time: float = 0.0

    @property
    def bounded(self) -> bool:
        """False for the whole-region (infinite level) case."""
        return self.k is not None

    def k_float(self) -> float:
        """The level as a float (``inf`` when unbounded)."""
        return float("inf") if self.k is None else float(self.k)


def _constrained_minimum(
    p: RationalMatrix,
    center: list,
    rows: list[list],
    rhs: list,
) -> tuple[Fraction, list]:
    """Exact minimum of ``(w-c)^T P (w-c)`` subject to ``rows @ w = rhs``."""
    m = len(rows)
    c_mat = RationalMatrix(rows)
    # d_tilde = rhs - C c
    d_tilde = [
        to_fraction(rhs[i])
        - sum((c_mat[i, j] * center[j] for j in range(c_mat.cols)), Fraction(0))
        for i in range(m)
    ]
    # S = C P^{-1} C^T  (solve P X = C^T exactly).
    x = solve(p, c_mat.T)  # n x m
    s = c_mat @ x
    lam = solve_vector(s, d_tilde)  # S lam = d_tilde
    k = sum((d * l for d, l in zip(d_tilde, lam)), Fraction(0))
    # minimizer: w = c + P^{-1} C^T lam
    y = x.dot(lam)
    w = [center[j] + y[j] for j in range(len(center))]
    return k, w


def synthesize_robust_level(
    flow: AffineSystem,
    halfspace: HalfSpace,
    p_exact: RationalMatrix,
    w_eq: list | None = None,
) -> RobustRegion:
    """Exact robust level for one mode (see module docstring)."""
    start = time.perf_counter()
    geometry = surface_geometry(halfspace, flow)
    n = flow.dimension
    if p_exact.shape != (n, n):
        raise ValueError("P dimension mismatch")
    if w_eq is None:
        a_exact = RationalMatrix.from_numpy(flow.a)
        b_exact = [to_fraction(x) for x in flow.b.tolist()]
        w_eq = solve_vector(a_exact, [-x for x in b_exact])
    else:
        w_eq = [to_fraction(x) for x in w_eq]
    if not halfspace.contains(w_eq):
        raise ValueError("the equilibrium must lie inside the mode's region")

    surface_row = list(geometry.normal)
    surface_rhs = -geometry.offset

    if geometry.constant_on_surface:
        # The inward derivative is the same everywhere on the surface.
        derivative = geometry.inward_derivative(
            _any_surface_point(geometry)
        )
        if derivative > 0:
            return RobustRegion(
                k=None,
                minimizer=None,
                case="whole-region",
                geometry=geometry,
                time=time.perf_counter() - start,
            )
        # Entire surface is outward: minimize over the surface alone.
        k, w = _constrained_minimum(
            p_exact, w_eq, [surface_row], [surface_rhs]
        )
        return RobustRegion(
            k=k,
            minimizer=w,
            case="surface-min",
            geometry=geometry,
            time=time.perf_counter() - start,
        )

    # Case A: minimize over the surface; accept if flow points outward
    # (or is tangential) there.
    k_a, w_a = _constrained_minimum(p_exact, w_eq, [surface_row], [surface_rhs])
    if geometry.inward_derivative(w_a) <= 0:
        return RobustRegion(
            k=k_a,
            minimizer=w_a,
            case="surface-min",
            geometry=geometry,
            time=time.perf_counter() - start,
        )
    # Case B: both constraints active.
    derivative_row = list(geometry.derivative_row)
    derivative_rhs = -geometry.derivative_offset
    k_b, w_b = _constrained_minimum(
        p_exact,
        w_eq,
        [surface_row, derivative_row],
        [surface_rhs, derivative_rhs],
    )
    return RobustRegion(
        k=k_b,
        minimizer=w_b,
        case="kkt-corner",
        geometry=geometry,
        time=time.perf_counter() - start,
    )


def _any_surface_point(geometry: SurfaceGeometry) -> list:
    """A rational point on ``g.w + o = 0``."""
    g = list(geometry.normal)
    pivot = next(i for i, x in enumerate(g) if x != 0)
    point = [Fraction(0)] * len(g)
    point[pivot] = -geometry.offset / g[pivot]
    return point


def check_level_robust_smt(
    flow: AffineSystem,
    halfspace: HalfSpace,
    p_exact: RationalMatrix,
    w_eq: list,
    k: Fraction,
    box_radius: float | None = None,
    max_boxes: int = 50_000,
) -> bool | None:
    """SMT-style certification of condition (24) at level ``k``.

    Searches for a counterexample: a surface point with ``V <= k`` whose
    flow points strictly outward. ``True`` = certified (UNSAT over the
    box), ``False`` = refuted with a witness, ``None`` = undecided.
    """
    geometry = surface_geometry(halfspace, flow)
    n = flow.dimension
    variables = [Var(f"w{i}") for i in range(n)]
    w_eq = [to_fraction(x) for x in w_eq]
    value = quadratic_form_term(p_exact, variables, center=w_eq)
    on_surface = Atom(
        affine_term(list(geometry.normal), variables, geometry.offset),
        Relation.EQ,
    )
    sublevel = Atom(value - to_fraction(k), Relation.LE)
    outward = Atom(
        affine_term(
            list(geometry.derivative_row), variables, geometry.derivative_offset
        ),
        Relation.LT,
    )
    if box_radius is None:
        box_radius = max(
            10.0, 4.0 * float(max(abs(float(x)) for x in w_eq)) + 4.0
        )
    box = Box.cube([v.name for v in variables], -box_radius, box_radius)
    result = IcpSolver(max_boxes=max_boxes).check(
        [on_surface, sublevel, outward], box
    )
    if result.status is IcpStatus.UNSAT:
        return True
    if result.status is IcpStatus.SAT:
        return False
    return None
