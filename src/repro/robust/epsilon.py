"""Reference-perturbation radius ``epsilon`` (paper Section VI-C.2).

Given a robust region ``W_i^r`` around the equilibrium for reference
``r``, find ``epsilon_i > 0`` such that any perturbed reference
``r' in B(r, epsilon_i)`` keeps the *old* equilibrium inside the *new*
robust region — so the system converges to the new equilibrium without
a mode switch. The paper's two cases:

* flow constant on the surface (whole region robust):
  ``epsilon = dist(w_eq, surface) / ||A^{-1} B||_2``;
* general:
  ``epsilon = min( alpha*mu / (mu*(beta+gamma) + beta), delta/beta )``

with ``alpha`` a ball radius inside ``W_i``, ``beta = ||A^{-1}B||_2``
(equilibrium sensitivity), ``gamma = ||g^T B|| / ||p||`` (surface-shift
sensitivity), ``delta`` the equilibrium-to-surface distance and
``mu = sqrt(mu_min/mu_max)`` the eccentricity of ``P``.
"""

from __future__ import annotations

import math

import numpy as np

from .surface import SurfaceGeometry

__all__ = ["EpsilonInputs", "epsilon_radius"]


class EpsilonInputs:
    """Numeric ingredients of the epsilon formula for one mode."""

    def __init__(
        self,
        flow_a: np.ndarray,
        b_cl: np.ndarray,
        p: np.ndarray,
        k: float,
        w_eq: np.ndarray,
        geometry: SurfaceGeometry,
    ):
        self.flow_a = np.asarray(flow_a, dtype=float)
        self.b_cl = np.asarray(b_cl, dtype=float)
        self.p = np.asarray(p, dtype=float)
        self.k = float(k)
        self.w_eq = np.asarray(w_eq, dtype=float)
        self.geometry = geometry

    @property
    def beta(self) -> float:
        """Equilibrium sensitivity ``||A^{-1} B||_2``."""
        return float(
            np.linalg.norm(np.linalg.solve(self.flow_a, self.b_cl), 2)
        )

    @property
    def delta(self) -> float:
        """Distance from the equilibrium to the switching surface."""
        return self.geometry.distance_to_surface(self.w_eq)

    @property
    def gamma(self) -> float:
        """``||g^T B|| / ||p||`` — surface-shift sensitivity."""
        g = np.array([float(x) for x in self.geometry.normal])
        p_tan = np.array([float(x) for x in self.geometry.tangential_gradient])
        p_norm = float(np.linalg.norm(p_tan))
        if p_norm == 0:
            raise ValueError("gamma undefined when the field is constant on the surface")
        return float(np.linalg.norm(g @ self.b_cl)) / p_norm

    @property
    def mu(self) -> float:
        """``sqrt(mu_min / mu_max)`` of ``P``."""
        eigenvalues = np.linalg.eigvalsh(self.p)
        if eigenvalues[0] <= 0:
            raise ValueError("P must be positive definite")
        return math.sqrt(float(eigenvalues[0] / eigenvalues[-1]))

    @property
    def alpha(self) -> float:
        """Radius of a ball around the equilibrium inside ``W_i``.

        The largest ball inside the ellipsoid has radius
        ``sqrt(k / mu_max)``; intersecting with the region half-space
        also caps it by the surface distance.
        """
        mu_max = float(np.linalg.eigvalsh(self.p)[-1])
        return min(math.sqrt(self.k / mu_max), self.delta)


def epsilon_radius(inputs: EpsilonInputs) -> float:
    """Evaluate the paper's epsilon formula for one mode."""
    beta = inputs.beta
    delta = inputs.delta
    if inputs.geometry.constant_on_surface:
        return delta / beta
    alpha = inputs.alpha
    gamma = inputs.gamma
    mu = inputs.mu
    bound_ball = alpha * mu / (mu * (beta + gamma) + beta)
    bound_surface = delta / beta
    return min(bound_ball, bound_surface)
