"""Volumes of (truncated) ellipsoids — Table II's "vol" column.

The robust region is ``W = {(w-e)^T P (w-e) <= k} ∩ {g.w + o >= 0}``.
Mapping the ellipsoid to the unit ball turns the half-space into a
spherical cap, whose volume fraction is the classic regularized
incomplete-beta expression; the full-ellipsoid volume is
``ball_volume(n) * k^{n/2} / sqrt(det P)``. Values span dozens of
orders of magnitude across the paper's benchmarks, so a log10 variant
is provided alongside the plain float.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

__all__ = [
    "unit_ball_volume",
    "cap_fraction",
    "ellipsoid_volume",
    "truncated_ellipsoid_volume",
    "log10_truncated_ellipsoid_volume",
]


def unit_ball_volume(n: int) -> float:
    """Volume of the Euclidean unit ball in ``R^n``."""
    return math.pi ** (n / 2.0) / math.gamma(n / 2.0 + 1.0)


def cap_fraction(t: float, n: int) -> float:
    """Fraction of the unit ``n``-ball with ``x1 >= t`` (``t in [-1, 1]``).

    For ``t >= 0`` this is half the regularized incomplete beta
    ``I_{1 - t^2}((n+1)/2, 1/2)``; the ``t < 0`` side follows by
    symmetry.
    """
    if t <= -1.0:
        return 1.0
    if t >= 1.0:
        return 0.0
    if t >= 0.0:
        return 0.5 * float(special.betainc((n + 1) / 2.0, 0.5, 1.0 - t * t))
    return 1.0 - cap_fraction(-t, n)


def _kept_fraction(
    p: np.ndarray, k: float, center: np.ndarray, normal: np.ndarray, offset: float
) -> float:
    """Fraction of the ellipsoid on the side ``normal.w + offset >= 0``."""
    n = p.shape[0]
    # In unit-ball coordinates u the half-space becomes v.u >= -s with
    # s = (g.e + o) / (sqrt(k) ||P^{-1/2} g||).
    g_pinv_g = float(normal @ np.linalg.solve(p, normal))
    if g_pinv_g <= 0:
        raise ValueError("P must be positive definite")
    margin = float(normal @ center) + offset
    s = margin / math.sqrt(k * g_pinv_g)
    # Keep u with unit-direction component >= -s: that is cap_fraction(-s).
    return cap_fraction(-s, n)


def ellipsoid_volume(p: np.ndarray, k: float) -> float:
    """Volume of ``{(w-e)^T P (w-e) <= k}``."""
    p = np.asarray(p, dtype=float)
    n = p.shape[0]
    if k < 0:
        raise ValueError("level k must be nonnegative")
    eigenvalues = np.linalg.eigvalsh(p)
    if eigenvalues[0] <= 0:
        raise ValueError("P must be positive definite")
    logdet = float(np.sum(np.log(eigenvalues)))
    log_volume = (
        math.log(unit_ball_volume(n)) + 0.5 * n * math.log(k) - 0.5 * logdet
        if k > 0
        else -math.inf
    )
    return math.exp(log_volume) if log_volume < 700 else math.inf


def truncated_ellipsoid_volume(
    p: np.ndarray,
    k: float,
    center: np.ndarray,
    normal: np.ndarray,
    offset: float,
) -> float:
    """Volume of the robust region ``{V <= k} ∩ {normal.w + offset >= 0}``."""
    p = np.asarray(p, dtype=float)
    center = np.asarray(center, dtype=float)
    normal = np.asarray(normal, dtype=float)
    if k == 0:
        return 0.0
    fraction = _kept_fraction(p, k, center, normal, offset)
    return ellipsoid_volume(p, k) * fraction


def log10_truncated_ellipsoid_volume(
    p: np.ndarray,
    k: float,
    center: np.ndarray,
    normal: np.ndarray,
    offset: float,
) -> float:
    """``log10`` of the truncated volume, safe across extreme scales."""
    p = np.asarray(p, dtype=float)
    n = p.shape[0]
    if k <= 0:
        return -math.inf
    fraction = _kept_fraction(
        p, k, np.asarray(center, dtype=float), np.asarray(normal, dtype=float), offset
    )
    if fraction <= 0:
        return -math.inf
    _sign, logdet = np.linalg.slogdet(p)
    log_volume = (
        math.log(unit_ball_volume(n)) + 0.5 * n * math.log(k) - 0.5 * logdet
    )
    return (log_volume + math.log(fraction)) / math.log(10.0)
