"""Monte Carlo validation of the reference-perturbation guarantee.

Section VI-C.2's claim is dynamic: *if the references move by less than
``epsilon``, the system converges to the new equilibrium without a mode
switch*. The symbolic pipeline proves it; this module stress-tests it
statistically — sample perturbed references inside the ball, rebuild
the switched closed loop, simulate from the old equilibrium, and count
switches. A single switching trajectory would falsify the claimed
``epsilon`` (none is ever observed for verified radii; the tests also
confirm that *inflated* radii do produce violations, so the check has
teeth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..systems import PwaSystem, simulate_pwa

__all__ = ["MonteCarloReport", "monte_carlo_epsilon_check"]


@dataclass
class MonteCarloReport:
    """Aggregate outcome of the sampled-perturbation trials."""

    trials: int
    switch_free: int
    converged: int
    max_final_error: float
    worst_switches: int
    failures: list = field(default_factory=list)  # (r', n_switches, error)

    @property
    def all_switch_free(self) -> bool:
        """Every trial avoided switching."""
        return self.switch_free == self.trials

    @property
    def all_converged(self) -> bool:
        """Every trial reached the new equilibrium."""
        return self.converged == self.trials


def monte_carlo_epsilon_check(
    system_factory: Callable[[np.ndarray], PwaSystem],
    base_reference: np.ndarray,
    mode: int,
    epsilon: float,
    trials: int = 10,
    fraction: float = 0.9,
    t_final: float = 20.0,
    convergence_tol: float = 1e-2,
    seed: int = 0,
) -> MonteCarloReport:
    """Sample ``r'`` with ``||r' - r|| = fraction * epsilon`` and simulate.

    ``system_factory`` rebuilds the switched closed loop for a given
    reference (e.g. ``case.switched_system``). Each trial starts at the
    *old* equilibrium of ``mode`` and must reach the *new* equilibrium
    without any mode switch.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    base_reference = np.asarray(base_reference, dtype=float)
    rng = np.random.default_rng(seed)
    old_system = system_factory(base_reference)
    w_old = old_system.modes[mode].flow.equilibrium()

    switch_free = 0
    converged = 0
    max_error = 0.0
    worst_switches = 0
    failures = []
    for _ in range(trials):
        direction = rng.normal(size=base_reference.shape[0])
        direction /= np.linalg.norm(direction)
        r_new = base_reference + fraction * epsilon * direction
        system = system_factory(r_new)
        w_new = system.modes[mode].flow.equilibrium()
        trajectory = simulate_pwa(system, w_old, t_final=t_final)
        error = float(np.linalg.norm(trajectory.final_state - w_new))
        max_error = max(max_error, error)
        worst_switches = max(worst_switches, trajectory.n_switches)
        ok_switch = trajectory.n_switches == 0
        ok_converged = error < convergence_tol
        switch_free += ok_switch
        converged += ok_converged
        if not (ok_switch and ok_converged):
            failures.append((r_new.tolist(), trajectory.n_switches, error))
    return MonteCarloReport(
        trials=trials,
        switch_free=switch_free,
        converged=converged,
        max_final_error=max_error,
        worst_switches=worst_switches,
        failures=failures,
    )
