"""Zonotope flowpipe reachability (an independent check of the robust
regions, in the spirit of the related-work flowpipe methods)."""

from .flowpipe import Flowpipe, compute_flowpipe, verify_invariance
from .zonotope import Zonotope

__all__ = ["Zonotope", "Flowpipe", "compute_flowpipe", "verify_invariance"]
