"""Flowpipe computation for affine systems (related-work tie-in).

The paper's related work discusses flowpipe/invariant methods (Sogokon
et al.) and its conclusion targets the ARCH-COMP linear-dynamics
category; this module implements the standard zonotope flowpipe
algorithm for ``w' = A w + b``:

1. one exact step matrix ``e^{A dt}`` (dense expm);
2. a first-step bloating term covering the inter-sample behaviour,
   using the classic norm bound
   ``||e^{A s} w0 - (w0 + s A w0)|| <= (e^{||A|| s} - 1 - ||A|| s) ||w0||``;
3. zonotope propagation with Girard order reduction.

The result is a sequence of zonotopes whose union over-approximates the
exact reach set on ``[0, T]``. ``verify_invariance`` uses it as an
*independent* check of the robust-region claims: a flowpipe started
inside the region must never poke through the switching surface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from ..systems import AffineSystem, HalfSpace
from .zonotope import Zonotope

__all__ = ["Flowpipe", "compute_flowpipe", "verify_invariance"]


@dataclass
class Flowpipe:
    """A time-indexed sequence of zonotopes covering the reach set."""

    segments: list  # Zonotope per step, covering [k dt, (k+1) dt]
    dt: float
    horizon: float

    def __len__(self) -> int:
        return len(self.segments)

    def max_support(self, direction: np.ndarray) -> float:
        """Largest support value over the whole pipe."""
        return max(segment.support(direction) for segment in self.segments)

    def interval_hull(self) -> tuple[np.ndarray, np.ndarray]:
        """Componentwise bounds over the whole pipe."""
        lowers, uppers = zip(*(s.interval_hull() for s in self.segments))
        return np.min(lowers, axis=0), np.max(uppers, axis=0)


def _bloat_radius(
    a_aug_norm: float, dt: float, augmented_state_bound: float
) -> float:
    """Inter-sample error bound for the first segment.

    In augmented coordinates ``v = (w, 1)`` the affine flow is linear,
    ``v' = A_aug v``, and the deviation of ``e^{A_aug s} v0`` from the
    straight segment between its endpoints is bounded by the classic
    second-order exponential remainder

        (e^{||A_aug|| dt} - 1 - ||A_aug|| dt) * ||v0||.
    """
    z = a_aug_norm * dt
    remainder = np.expm1(z) - z  # e^z - 1 - z >= 0
    return float(remainder * augmented_state_bound)


def compute_flowpipe(
    system: AffineSystem,
    initial: Zonotope,
    horizon: float,
    dt: float | None = None,
    max_generators: int = 60,
) -> Flowpipe:
    """Zonotope flowpipe of ``w' = A w + b`` from ``initial`` over
    ``[0, horizon]``.

    ``dt=None`` picks a step adapted to the system's stiffness,
    ``0.05 / ||A_aug||`` — the bloating term grows like
    ``e^{||A_aug|| dt}``, so oversized steps make the first segment
    useless for stiff dynamics (the engine loops have poles near -80).
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if dt is not None and dt <= 0:
        raise ValueError("dt must be positive")
    if initial.dimension != system.dimension:
        raise ValueError("initial-set dimension mismatch")
    a = system.a
    b = system.b
    n = system.dimension
    if dt is None:
        stiffness = np.zeros((n + 1, n + 1))
        stiffness[:n, :n] = a
        stiffness[:n, n] = b
        norm = float(np.linalg.norm(stiffness, 2))
        dt = min(horizon / 4.0, 0.05 / max(norm, 1e-9))
    steps = int(np.ceil(horizon / dt))
    phi = expm(a * dt)
    # Constant-input contribution over one step: x+ = phi x + psi b with
    # psi = int_0^dt e^{A s} ds, via the block-exponential trick.
    block = np.zeros((n + 1, n + 1))
    block[:n, :n] = a
    block[:n, n] = b
    exp_block = expm(block * dt)
    step_offset = exp_block[:n, n]

    # First segment: convex hull of X0 and phi X0 + offset, bloated.
    a_aug = np.zeros((n + 1, n + 1))
    a_aug[:n, :n] = a
    a_aug[:n, n] = b
    a_aug_norm = float(np.linalg.norm(a_aug, 2))
    lower, upper = initial.interval_hull()
    state_norm_sq = float(np.sum(np.maximum(np.abs(lower), np.abs(upper)) ** 2))
    augmented_state_bound = float(np.sqrt(state_norm_sq + 1.0))
    bloat = _bloat_radius(a_aug_norm, dt, augmented_state_bound)
    mapped = initial.linear_map(phi).translate(step_offset)
    # Hull of Z0 and mapped, as a zonotope over-approximation:
    # center midpoint, generators = both sets' generators + the
    # center-difference direction.
    hull_center = 0.5 * (initial.center + mapped.center)
    hull_generators = np.hstack(
        [
            initial.generators * 0.5,
            mapped.generators * 0.5,
            (0.5 * (mapped.center - initial.center)).reshape(-1, 1),
        ]
    )
    first = Zonotope(hull_center, hull_generators).minkowski_sum(
        Zonotope.ball_inf(np.zeros(n), bloat)
    )
    segments = [first.reduce_order(max_generators)]
    current = first
    for _ in range(1, steps):
        current = (
            current.linear_map(phi).translate(step_offset)
        ).reduce_order(max_generators)
        segments.append(current)
    return Flowpipe(segments=segments, dt=dt, horizon=steps * dt)


def verify_invariance(
    system: AffineSystem,
    initial: Zonotope,
    halfspace: HalfSpace,
    horizon: float,
    dt: float | None = None,
) -> bool:
    """Flowpipe check that trajectories never leave ``halfspace``.

    Returns ``True`` when the entire flowpipe stays in the region
    (support of ``-g`` never exceeds the offset) — an independent
    confirmation of the robust-region verdicts. ``False`` only means
    the *over-approximation* pokes out (inconclusive, not a refutation).
    """
    pipe = compute_flowpipe(system, initial, horizon, dt=dt)
    g = halfspace.normal_float()
    offset = float(halfspace.offset)
    # region: g.w + offset >= 0 <=> max of (-g).w <= offset.
    return pipe.max_support(-g) <= offset
