"""Zonotopes: the set representation of the reachability engine.

A zonotope is an affine image of a unit hypercube,

    Z = { c + G b : b in [-1, 1]^m },

closed under exactly the operations flowpipe computation needs — linear
maps and Minkowski sums — both exact and cheap (matrix products and
concatenation). Interval hulls and support functions give the outer
bounds used for guard checks and containment tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Zonotope"]


@dataclass(frozen=True)
class Zonotope:
    """A zonotope ``{center + generators @ b : ||b||_inf <= 1}``."""

    center: np.ndarray
    generators: np.ndarray  # n x m (m generators as columns)

    def __post_init__(self):
        center = np.asarray(self.center, dtype=float).reshape(-1)
        generators = np.asarray(self.generators, dtype=float)
        if generators.ndim == 1:
            generators = generators.reshape(-1, 1)
        if generators.shape[0] != center.shape[0]:
            raise ValueError("generator/center dimension mismatch")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "generators", generators)

    # ------------------------------------------------------------------
    @classmethod
    def from_box(cls, lower: np.ndarray, upper: np.ndarray) -> "Zonotope":
        """The axis-aligned box ``[lower, upper]`` as a zonotope."""
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        if np.any(lower > upper):
            raise ValueError("empty box")
        center = 0.5 * (lower + upper)
        radii = 0.5 * (upper - lower)
        return cls(center, np.diag(radii))

    @classmethod
    def point(cls, center: np.ndarray) -> "Zonotope":
        """A degenerate zonotope (no generators)."""
        center = np.asarray(center, dtype=float).reshape(-1)
        return cls(center, np.zeros((center.shape[0], 0)))

    @classmethod
    def ball_inf(cls, center: np.ndarray, radius: float) -> "Zonotope":
        """The infinity-norm ball of the given radius."""
        center = np.asarray(center, dtype=float).reshape(-1)
        return cls(center, radius * np.eye(center.shape[0]))

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Ambient dimension ``n``."""
        return self.center.shape[0]

    @property
    def n_generators(self) -> int:
        """Number of generators ``m``."""
        return self.generators.shape[1]

    # ------------------------------------------------------------------
    def linear_map(self, matrix: np.ndarray) -> "Zonotope":
        """Image under ``matrix`` (exact for zonotopes)."""
        matrix = np.asarray(matrix, dtype=float)
        return Zonotope(matrix @ self.center, matrix @ self.generators)

    def translate(self, offset: np.ndarray) -> "Zonotope":
        """Shift the center by ``offset``."""
        return Zonotope(self.center + np.asarray(offset, dtype=float), self.generators)

    def minkowski_sum(self, other: "Zonotope") -> "Zonotope":
        """Minkowski sum (generator concatenation)."""
        if other.dimension != self.dimension:
            raise ValueError("dimension mismatch")
        return Zonotope(
            self.center + other.center,
            np.hstack([self.generators, other.generators]),
        )

    def scale(self, factor: float) -> "Zonotope":
        """Uniform scaling about the origin."""
        return Zonotope(factor * self.center, factor * self.generators)

    # ------------------------------------------------------------------
    def support(self, direction: np.ndarray) -> float:
        """``max_{z in Z} direction . z`` (the support function)."""
        direction = np.asarray(direction, dtype=float)
        return float(
            direction @ self.center
            + np.abs(direction @ self.generators).sum()
        )

    def interval_hull(self) -> tuple[np.ndarray, np.ndarray]:
        """Componentwise ``(lower, upper)`` bounds."""
        radii = np.abs(self.generators).sum(axis=1)
        return self.center - radii, self.center + radii

    def radius_inf(self) -> float:
        """Half-width of the interval hull (infinity norm)."""
        return float(np.abs(self.generators).sum(axis=1).max())

    def contains_point(self, point: np.ndarray, tol: float = 1e-9) -> bool:
        """Membership via linear programming (scipy linprog).

        Solves ``G b = point - c`` with ``||b||_inf <= 1``.
        """
        from scipy.optimize import linprog

        point = np.asarray(point, dtype=float)
        m = self.n_generators
        if m == 0:
            return bool(np.allclose(point, self.center, atol=tol))
        result = linprog(
            c=np.zeros(m),
            A_eq=self.generators,
            b_eq=point - self.center,
            bounds=[(-1.0, 1.0)] * m,
            method="highs",
        )
        return bool(result.status == 0)

    def reduce_order(self, max_generators: int) -> "Zonotope":
        """Girard order reduction: box the smallest generators.

        Keeps the ``max_generators - n`` largest generators and replaces
        the rest by their interval hull (n axis-aligned generators) —
        a sound over-approximation.
        """
        n, m = self.dimension, self.n_generators
        if m <= max_generators:
            return self
        keep = max(max_generators - n, 0)
        norms = np.linalg.norm(self.generators, ord=1, axis=0) - np.linalg.norm(
            self.generators, ord=np.inf, axis=0
        )
        order = np.argsort(norms)  # smallest "spread" first -> boxed
        boxed = order[: m - keep]
        kept = order[m - keep:]
        box_radii = np.abs(self.generators[:, boxed]).sum(axis=1)
        new_generators = np.hstack(
            [self.generators[:, kept], np.diag(box_radii)]
        )
        return Zonotope(self.center, new_generators)

    def __repr__(self) -> str:
        return f"Zonotope(dim={self.dimension}, generators={self.n_generators})"
