"""Benchmarks for the extension subsystems (beyond the paper's tables).

Times the certification-campaign building blocks — certificates,
flowpipes, fault margins, common-Lyapunov search, discrete-time
verification — so regressions in the extended pipeline are visible next
to the paper-reproduction numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import case_by_name, fault_margin
from repro.lyapunov import synthesize, synthesize_common, synthesize_discrete
from repro.lyapunov.discrete import validate_discrete_candidate
from repro.reach import Zonotope, compute_flowpipe
from repro.robust import StabilityCertificate, certify_mode


@pytest.fixture(scope="module")
def size5_mode0():
    case = case_by_name("size5")
    system = case.switched_system(case.reference())
    candidate = synthesize("lmi", case.mode_matrix(0), backend="ipm")
    return case, system.modes[0].flow, system.modes[0].region.halfspaces[0], candidate


def test_certificate_build_and_verify(benchmark, size5_mode0):
    _case, flow, halfspace, candidate = size5_mode0

    def build():
        certificate = certify_mode(flow, halfspace, candidate.exact_p(10))
        return StabilityCertificate.from_json(certificate.to_json()).verify()

    assert benchmark(build) is True


@pytest.mark.parametrize("horizon", [0.5, 2.0])
def test_flowpipe_compute(benchmark, size5_mode0, horizon):
    _case, flow, _halfspace, _candidate = size5_mode0
    initial = Zonotope.ball_inf(flow.equilibrium(), 0.01)
    pipe = benchmark(compute_flowpipe, flow, initial, horizon)
    assert len(pipe) >= 4


def test_fault_margin_bisection(benchmark):
    plant = case_by_name("size18").plant

    margin = benchmark.pedantic(
        fault_margin,
        args=(plant, "actuator-effectiveness", 0),
        rounds=1,
        iterations=1,
    )
    assert 0 < margin <= 1.0


def test_common_lyapunov_search(benchmark):
    a0 = np.diag([-1.0, -3.0, -2.0])
    a1 = np.diag([-2.0, -0.5, -4.0])
    result = benchmark.pedantic(
        synthesize_common,
        args=([a0, a1],),
        kwargs={"max_iterations": 30_000},
        rounds=1,
        iterations=1,
    )
    assert result.feasible


def test_discrete_pipeline(benchmark):
    from scipy.linalg import expm

    a_disc = expm(case_by_name("size5").mode_matrix(0) * 0.02)

    def pipeline():
        candidate = synthesize_discrete(a_disc)
        positivity, decrease = validate_discrete_candidate(candidate, a_disc)
        return positivity.valid and decrease.valid

    assert benchmark(pipeline) is True


def test_shape_flowpipe_cost_grows_with_horizon(size5_mode0):
    import time

    _case, flow, _halfspace, _candidate = size5_mode0
    initial = Zonotope.ball_inf(flow.equilibrium(), 0.01)
    start = time.perf_counter()
    short = compute_flowpipe(flow, initial, 0.25)
    t_short = time.perf_counter() - start
    start = time.perf_counter()
    long = compute_flowpipe(flow, initial, 4.0)
    t_long = time.perf_counter() - start
    assert len(long) > len(short)
    assert t_long > t_short * 0.5  # monotone up to noise
