"""Benchmark harness for Figure 3 — validation time per symbolic solver.

Validates the *same* candidate with every registered validator and lets
pytest-benchmark print the comparison; assertions pin the paper's
ordering (Sylvester fastest, search-based slowest, "+ det" encoding
helping the search-based solver on singular-adjacent inputs).
"""

from __future__ import annotations

import time

import pytest

from repro.engine import case_by_name
from repro.exact import RationalMatrix
from repro.lyapunov import synthesize
from repro.validate import run_validator, validate_candidate

EXACT_VALIDATORS = ["sylvester", "gauss", "ldl", "sympy"]
ICP_VALIDATORS = ["icp", "icp+det"]


@pytest.fixture(scope="module")
def shared_candidates():
    out = {}
    for case_name in ("size3", "size5", "size10"):
        a = case_by_name(case_name).mode_matrix(0)
        out[case_name] = (a, synthesize("eq-num", a))
    return out


@pytest.mark.parametrize("validator", EXACT_VALIDATORS)
@pytest.mark.parametrize("case_name", ["size3", "size5", "size10"])
def test_exact_validators(benchmark, shared_candidates, validator, case_name):
    a, candidate = shared_candidates[case_name]
    report = benchmark(
        validate_candidate, candidate, a, validator=validator
    )
    assert report.valid is True


@pytest.mark.parametrize("validator", ICP_VALIDATORS)
def test_icp_validators(benchmark, validator):
    """The search-based (SMT-style) validators on a small deterministic
    instance.

    Even the 6-dimensional size-3 closed loop exceeds a laptop budget
    for the search-based route (the paper's Z3/CVC5 bars tower over the
    minor-based checks for the same reason), and rounded rational
    candidates have unpredictable proof cost; the timing sample here
    therefore uses a fixed diagonally dominant integer system whose
    proof terminates quickly."""
    import numpy as np

    from repro.lyapunov import LyapunovCandidate

    a3 = np.array([[-4.0, 1.0, 0.0], [0.0, -5.0, 1.0], [1.0, 0.0, -6.0]])
    candidate = LyapunovCandidate(
        np.array([[5.0, 1.0, 0.0], [1.0, 4.0, 1.0], [0.0, 1.0, 6.0]]),
        method="fixed",
    )
    report = benchmark.pedantic(
        validate_candidate,
        args=(candidate, a3),
        kwargs={"validator": validator, "max_boxes": 300_000},
        rounds=1,
        iterations=1,
    )
    assert report.valid is True


def test_shape_sylvester_beats_search(shared_candidates):
    """Figure 3's ordering: the ad-hoc Sylvester method is the fastest
    validator; the ICP (SMT-search) route is orders of magnitude slower —
    on the size-3 closed loop it cannot even finish within a small budget
    (the Z3/CVC5-timeout analogue), while Sylvester proves it instantly."""
    a, candidate = shared_candidates["size3"]
    start = time.perf_counter()
    report = validate_candidate(candidate, a, validator="sylvester")
    sylvester = time.perf_counter() - start
    assert report.valid is True
    start = time.perf_counter()
    budget_limited = validate_candidate(
        candidate, a, validator="icp", max_boxes=3_000
    )
    icp = time.perf_counter() - start
    assert icp > 3 * sylvester
    assert budget_limited.valid is not False  # undecided, never refuted


def test_shape_det_encoding_decides_singular_inputs():
    """The '+ det' option settles inputs the strict encoding cannot: a
    PSD-singular matrix with a non-dyadic null direction."""
    matrix = RationalMatrix([[9, -3], [-3, 1]])
    strict = run_validator("icp", matrix, max_boxes=2_000)
    plus_det = run_validator("icp+det", matrix)
    assert strict.valid is None  # undecided within budget
    assert plus_det.valid is False  # refuted via the determinant

    # And on a definite matrix both agree.
    pd = RationalMatrix([[5, 1], [1, 3]])
    assert run_validator("icp", pd).valid is True
    assert run_validator("icp+det", pd).valid is True


def test_shape_all_exact_validators_agree(shared_candidates):
    for case_name, (a, candidate) in shared_candidates.items():
        verdicts = {
            validator: validate_candidate(
                candidate, a, validator=validator
            ).valid
            for validator in EXACT_VALIDATORS
        }
        assert set(verdicts.values()) == {True}, f"disagreement at {case_name}"
