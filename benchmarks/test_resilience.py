"""Resilience-machinery benchmarks: journal overhead and resume speedup.

The crash-safety layer (append-only fsync'd journal, retry bookkeeping)
rides along on every journaled campaign, so its cost must stay
negligible next to the tasks it protects. This benchmark times a
realistic validation workload with and without a journal, pins the
per-task overhead below 5%, measures the replay speedup of resuming a
half-completed campaign, and writes a ``"resilience"`` section into
``BENCH_experiments.json`` next to the experiment and kernel numbers.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time

import numpy as np

from repro.lyapunov import synthesize
from repro.runner import CampaignStats, Journal, Task, run_tasks, write_section
from repro.validate import validate_candidate

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_experiments.json"
)

N_TASKS = 24
#: Maximum tolerated journal overhead per task, as a fraction of the
#: task's own runtime (measured ~1% on a size-10 validation: one
#: fsync'd line write of ~0.2 ms against an ~18 ms task).
OVERHEAD_BOUND = 0.05


class ValidationTask(Task):
    """A realistic campaign unit: exact validation of a stable size-10
    candidate (~tens of ms — the small end of the Table I grid, which
    is the *worst* case for relative journal overhead)."""

    def __init__(self, index: int, seed: int):
        self.index = index
        self.seed = seed

    def key(self):
        return {"case": f"resilience{self.index}"}

    def run(self):
        rng = np.random.default_rng(self.seed)
        a = rng.normal(size=(10, 10))
        a -= (np.linalg.eigvals(a).real.max() + 0.5) * np.eye(10)
        candidate = synthesize("eq-num", a)
        report = validate_candidate(candidate, a)
        return bool(report.valid)


def _tasks():
    return [ValidationTask(i, seed=100 + i) for i in range(N_TASKS)]


def _campaign_wall(journal=None):
    start = time.perf_counter()
    results = run_tasks(_tasks(), jobs=1, journal=journal)
    elapsed = time.perf_counter() - start
    assert all(isinstance(r, bool) for r in results)
    return elapsed


def test_journal_overhead_and_resume_speedup_write_bench():
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "campaign.jsonl"

        # Warm-up (imports, kernel caches), then interleave the two
        # configurations and keep each one's best-of-3: robust against
        # one-sided load spikes on a shared CI box.
        _campaign_wall()
        plain, journaled = float("inf"), float("inf")
        for _ in range(3):
            plain = min(plain, _campaign_wall())
            with Journal(path) as journal:
                journaled = min(journaled, _campaign_wall(journal=journal))
        per_task_overhead_s = max(0.0, journaled - plain) / N_TASKS
        relative = max(0.0, journaled - plain) / plain

        # Pin: journaling a campaign costs < 5% per task.
        assert relative < OVERHEAD_BOUND, (
            f"journal overhead {relative:.1%} exceeds "
            f"{OVERHEAD_BOUND:.0%} ({journaled:.3f}s vs {plain:.3f}s)"
        )

        # Resume a half-completed campaign: replay must beat re-running.
        half = _tasks()[: N_TASKS // 2]
        with Journal(path) as journal:
            run_tasks(half, jobs=1, journal=journal)
        stats = CampaignStats()
        start = time.perf_counter()
        with Journal(path, resume=True) as journal:
            run_tasks(_tasks(), jobs=1, journal=journal, stats=stats)
        resumed = time.perf_counter() - start
        assert stats.replayed == N_TASKS // 2
        assert stats.executed == N_TASKS - N_TASKS // 2
        # The resumed run executes half the tasks: it must land well
        # under a full campaign (75% leaves headroom for replay cost).
        assert resumed < plain * 0.75, (
            f"resume ({resumed:.3f}s) not faster than full run "
            f"({plain:.3f}s)"
        )

    data = write_section(
        BENCH_PATH,
        "resilience",
        {
            "tasks": N_TASKS,
            "plain_wall_s": plain,
            "journaled_wall_s": journaled,
            "per_task_overhead_s": per_task_overhead_s,
            "relative_overhead": relative,
            "overhead_bound": OVERHEAD_BOUND,
            "resume_half_wall_s": resumed,
            "resume_replayed": stats.replayed,
        },
    )
    assert data["schema"] == "repro-bench/2"
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["resilience"]["relative_overhead"] < OVERHEAD_BOUND
