"""Benchmark harness for the certification service.

Replays a 10³-request trace shaped like the Table I / Table II
workloads — the closed-loop mode matrices of the benchmark suite under
several decay-scaling levels, requested repeatedly with the skew of a
real certification stream — through one
:class:`repro.service.CertificationService`, twice:

* **cold**: empty content-addressed store; first occurrences pay full
  synthesis+validation, repeats within the trace already hit the cache;
* **warm**: the same trace replayed against the populated store — every
  request is a cache hit.

The headline pin is the warm-over-cold speedup of the full replay
(wall-clock), which must be at least 5x. ``REPRO_PERF_SOFT=1``
(shared/noisy CI runners) relaxes the 5x pin to a warning but still
hard-fails below 2.5x. Per-request p50/p99 latencies, throughput and
cache hit rates for both passes land in the ``service`` section of
``BENCH_experiments.json`` (schema ``repro-bench/2``), alongside the
fingerprint-memoization hot-loop numbers (a 10⁴-task campaign
fingerprints every task at least twice: journal lookup + record).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import warnings

import numpy as np
import pytest

from repro.engine import MODES, benchmark_suite
from repro.runner import task_fingerprint, write_section
from repro.service import CertificationService, CertifyTask

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_experiments.json"
)

N_REQUESTS = 1_000
PIN_SPEEDUP = 5.0
#: REPRO_PERF_SOFT floor: >2x regression from the pinned 5x baseline.
SOFT_FLOOR_SPEEDUP = 2.5

N_FINGERPRINT_TASKS = 10_000
#: The memoized fingerprint is one attribute read; recomputing the
#: salted SHA-256 over the tagged-JSON spec is orders of magnitude
#: slower. Pin a conservative floor.
FINGERPRINT_PIN_SPEEDUP = 5.0


def _trace() -> list[CertifyTask]:
    """The distinct request population + the skewed 10³-request trace.

    Six closed-loop mode matrices (sizes 3 and 5, both operating
    modes) under eight decay scalings = 48 distinct certification
    requests, replayed round-robin to ``N_REQUESTS`` — so the cold
    pass itself sees ~95% repeats, the shape of a fleet certifying a
    gain-schedule grid.
    """
    matrices = [
        np.asarray(case.mode_matrix(mode), dtype=float)
        for case in benchmark_suite(sizes=(3, 5), integer_sizes=(3,))
        for mode in MODES
    ]
    distinct = [
        CertifyTask(scale * a, method="lmi", backend="ipm", sigfigs=8)
        for a in matrices
        for scale in (1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3, 1.35)
    ]
    return [distinct[i % len(distinct)] for i in range(N_REQUESTS)]


def _replay(service: CertificationService, trace) -> dict:
    latencies = np.empty(len(trace))
    started = time.perf_counter()
    for i, request in enumerate(trace):
        t0 = time.perf_counter()
        certificate = service.certify(request)
        latencies[i] = time.perf_counter() - t0
        assert certificate.synth_status == "ok"
    wall = time.perf_counter() - started
    return {
        "requests": len(trace),
        "wall_s": wall,
        "throughput_rps": len(trace) / wall,
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
    }


def test_service_replay_speedup_pin():
    """The tentpole pin: warm replay >=5x faster than the cold pass."""
    soft = bool(os.environ.get("REPRO_PERF_SOFT"))
    trace = _trace()
    distinct = len({task_fingerprint(t) for t in trace})
    with CertificationService(sigfigs=8) as service:
        cold = _replay(service, trace)
        cold_counters = service.counters()
        warm = _replay(service, trace)
        warm_counters = service.counters()

    # Cold pass: every distinct request computed exactly once, repeats
    # served from the cache. Warm pass: pure cache hits.
    assert cold_counters["computations"] == distinct
    assert warm_counters["computations"] == distinct
    assert warm_counters["memory_hits"] == 2 * len(trace) - distinct
    cold["hit_rate"] = (len(trace) - distinct) / len(trace)
    warm["hit_rate"] = 1.0

    speedup = cold["wall_s"] / warm["wall_s"]
    floor = SOFT_FLOOR_SPEEDUP if soft else PIN_SPEEDUP
    if soft and speedup < PIN_SPEEDUP:
        warnings.warn(
            f"service replay: warm speedup {speedup:.1f}x below the "
            f"{PIN_SPEEDUP:g}x pin (soft mode, floor "
            f"{SOFT_FLOOR_SPEEDUP:g}x)",
            stacklevel=1,
        )
    assert speedup >= floor, (
        f"warm replay {warm['wall_s']:.3f}s is only {speedup:.1f}x over "
        f"the cold pass {cold['wall_s']:.3f}s (floor {floor:g}x)"
    )

    data = write_section(
        BENCH_PATH,
        "service",
        {
            "config": {
                "requests": len(trace),
                "distinct": distinct,
                "method": "lmi",
                "backend": "ipm",
            },
            "pin_speedup": PIN_SPEEDUP,
            "soft_floor_speedup": SOFT_FLOOR_SPEEDUP,
            "soft_mode": soft,
            "warm_over_cold_speedup": speedup,
            "cold": cold,
            "warm": warm,
            "store": {
                k: warm_counters[k]
                for k in ("memory_hits", "misses", "writes", "evictions")
            },
            "fingerprint_memo": _fingerprint_bench(),
        },
    )
    assert data["schema"] == "repro-bench/2"
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["service"]["warm_over_cold_speedup"] == pytest.approx(
        speedup
    )
    assert "experiments" in on_disk


def _fingerprint_bench() -> dict:
    """Fingerprint a 10⁴-task campaign's hot loop, cold vs memoized."""
    tasks = [
        CertifyTask(
            [[-1.0 - i / N_FINGERPRINT_TASKS, 0.25], [0.0, -2.0]],
            method="lmi", backend="shift",
        )
        for i in range(N_FINGERPRINT_TASKS)
    ]
    started = time.perf_counter()
    for task in tasks:
        task_fingerprint(task)
    cold_s = time.perf_counter() - started
    started = time.perf_counter()
    for task in tasks:
        task_fingerprint(task)
    memo_s = time.perf_counter() - started
    return {
        "tasks": N_FINGERPRINT_TASKS,
        "cold_s": cold_s,
        "memoized_s": memo_s,
        "speedup": cold_s / memo_s,
    }


def test_fingerprint_memoization_speedup():
    """The runner's hot loop fingerprints every task at least twice
    (journal lookup, then the result record); the memo makes every
    repeat a single attribute read."""
    result = _fingerprint_bench()
    assert result["speedup"] >= FINGERPRINT_PIN_SPEEDUP, (
        f"memoized fingerprinting only {result['speedup']:.1f}x faster "
        f"than recomputation (floor {FINGERPRINT_PIN_SPEEDUP:g}x)"
    )


def test_replay_certificates_match_direct_path():
    """Spot-check the replay returns exactly what direct tasks compute."""
    trace = _trace()[:4]
    direct = [
        CertifyTask(
            t.a, method=t.method, backend=t.backend,
            validator=t.validator, sigfigs=t.sigfigs,
        ).run()
        for t in trace
    ]
    with CertificationService(sigfigs=8) as service:
        served = [service.certify(t) for t in trace]
    assert [c.identity() for c in served] == [
        c.identity() for c in direct
    ]
