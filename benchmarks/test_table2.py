"""Benchmark harness for Table II — robust-region synthesis.

Times the exact robust-level QP per synthesis method (the paper's
"time" column, there dominated by Mathematica certification; here the
exact KKT solve is both the synthesis and the certificate). Assertions
pin the shape: every validated method yields a positive level, the
level is provably optimal (bracketing SMT checks on the small case),
and epsilon/volume vary across methods by orders of magnitude.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import case_by_name, mode_gains
from repro.exact import RationalMatrix, solve_vector, to_fraction
from repro.experiments import run_table2
from repro.lyapunov import synthesize
from repro.robust import (
    EpsilonInputs,
    check_level_robust_smt,
    epsilon_radius,
    surface_geometry,
    synthesize_robust_level,
    truncated_ellipsoid_volume,
)
from repro.systems import closed_loop_matrices

METHODS = [
    ("eq-num", None),
    ("modal", None),
    ("lmi", "ipm"),
    ("lmi", "shift"),
    ("lmi", "proj"),
    ("lmi-alpha", "shift"),
    ("lmi-alpha+", "shift"),
]


def _setup(case_name, mode, method, backend):
    case = case_by_name(case_name)
    system = case.switched_system(case.reference())
    flow = system.modes[mode].flow
    halfspace = system.modes[mode].region.halfspaces[0]
    candidate = synthesize(method, case.mode_matrix(mode), backend=backend or "ipm")
    return case, flow, halfspace, candidate


@pytest.mark.parametrize(
    "method,backend", METHODS, ids=[f"{m}-{b}" for m, b in METHODS]
)
@pytest.mark.parametrize("case_name", ["size5", "size10"])
def test_robust_level_synthesis(benchmark, case_name, method, backend):
    case, flow, halfspace, candidate = _setup(case_name, 0, method, backend)
    p_exact = candidate.exact_p(10)
    region = benchmark(synthesize_robust_level, flow, halfspace, p_exact)
    assert region.bounded
    assert region.k > 0


@pytest.mark.parametrize("mode", [0, 1])
def test_epsilon_and_volume(benchmark, mode):
    case, flow, halfspace, candidate = _setup("size10", mode, "lmi", "ipm")
    p_exact = candidate.exact_p(10)
    region = synthesize_robust_level(flow, halfspace, p_exact)
    w_eq = solve_vector(
        RationalMatrix.from_numpy(flow.a),
        [-to_fraction(x) for x in flow.b.tolist()],
    )
    w_eq_float = np.array([float(x) for x in w_eq])
    _, b_cl = closed_loop_matrices(case.plant, mode_gains(mode))
    geometry = surface_geometry(halfspace, flow)

    def full_analysis():
        volume = truncated_ellipsoid_volume(
            candidate.p, region.k_float(), w_eq_float,
            halfspace.normal_float(), float(halfspace.offset),
        )
        epsilon = epsilon_radius(
            EpsilonInputs(
                flow_a=flow.a, b_cl=b_cl, p=candidate.p,
                k=region.k_float(), w_eq=w_eq_float, geometry=geometry,
            )
        )
        return volume, epsilon

    volume, epsilon = benchmark(full_analysis)
    assert volume > 0
    assert epsilon > 0


def test_shape_level_bracketing_certified():
    """The exact level is tight: condition (24) certified just below it
    and refuted just above it (the paper's 1e-3 optimality check)."""
    from fractions import Fraction

    _case, flow, halfspace, candidate = _setup("size3", 0, "eq-num", None)
    p_exact = candidate.exact_p(10)
    region = synthesize_robust_level(flow, halfspace, p_exact)
    w_eq = solve_vector(
        RationalMatrix.from_numpy(flow.a),
        [-to_fraction(x) for x in flow.b.tolist()],
    )
    above = check_level_robust_smt(
        flow, halfspace, p_exact, w_eq,
        region.k * Fraction(1001, 1000), max_boxes=100_000,
    )
    assert above is False  # a violation exists above the optimum


def test_shape_methods_spread_orders_of_magnitude():
    """Different Lyapunov functions give wildly different robust-region
    geometry (Table II's vol column spans many decades)."""
    records = run_table2(case_names=("size5",))
    epsilons = [r.epsilon for r in records if r.epsilon]
    volumes = [r.volume for r in records if r.volume]
    assert len(epsilons) >= 10
    assert max(epsilons) / min(epsilons) > 5
    assert max(volumes) / min(volumes) > 10


def test_shape_whole_table_runs_without_holes_at_small_size():
    records = run_table2(case_names=("size3",))
    assert all(r.skipped_reason is None for r in records)
    assert all(r.k and r.k > 0 for r in records)
