"""Benchmark harness for the Section VI-B.2 negative result.

Times the piecewise-quadratic LMI synthesis per encoding and pins the
paper's observation: candidates are produced (as tolerance/best-iterate
solutions), yet exact validation of the switching-surface condition
fails — plus the stronger diagnosis our ellipsoid method adds, a proof
that the case-study LMI systems are infeasible outright.
"""

from __future__ import annotations

import pytest

from repro.engine import case_by_name
from repro.lyapunov import ENCODINGS, synthesize_piecewise
from repro.validate import validate_piecewise


@pytest.fixture(scope="module")
def switched_size3():
    case = case_by_name("size3")
    return case.switched_system(case.reference())


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_piecewise_synthesis(benchmark, switched_size3, encoding):
    candidate = benchmark.pedantic(
        synthesize_piecewise,
        args=(switched_size3,),
        kwargs={"encoding": encoding, "max_iterations": 4_000},
        rounds=1,
        iterations=1,
    )
    # A candidate always comes back (best iterate), like the paper's
    # numerical solvers.
    assert candidate.p[0].shape == candidate.p[1].shape


def test_piecewise_surface_validation(benchmark, switched_size3):
    candidate = synthesize_piecewise(
        switched_size3, encoding="continuous", max_iterations=4_000
    )
    report = benchmark.pedantic(
        validate_piecewise,
        args=(candidate, switched_size3),
        kwargs={"conditions_scope": "surface", "max_boxes": 4_000},
        rounds=1,
        iterations=1,
    )
    # The paper's result: the surface condition always fails validation.
    assert report.valid is False
    assert any(
        name.startswith("surface-nonincrease")
        for name in report.failed_conditions
    )


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_shape_validation_always_fails(switched_size3, encoding):
    """Both encodings, same outcome — matching the paper verbatim.

    The continuous encoding uses the barrier engine (fast, nontrivial
    best iterate); the relaxed one — whose 111-dimensional barrier
    centering is slow — uses a moderate ellipsoid budget, which also
    yields a nontrivial iterate. A near-zero candidate would make the
    surface difference vanish identically (trivially 'valid' but
    meaningless), so nontriviality is asserted first."""
    import numpy as np

    if encoding == "continuous":
        candidate = synthesize_piecewise(
            switched_size3, encoding=encoding, solver="barrier"
        )
    else:
        candidate = synthesize_piecewise(
            switched_size3, encoding=encoding, max_iterations=8_000
        )
    assert np.abs(candidate.p[0]).max() > 1e-6  # nontrivial candidate
    report = validate_piecewise(
        candidate, switched_size3, conditions_scope="surface", max_boxes=4_000
    )
    assert report.valid is not True


def test_shape_lmi_system_is_provably_infeasible(switched_size3):
    """Beyond the paper: with the nominal reference both modes own a
    locally stable equilibrium, so no global piecewise-quadratic
    certificate exists — the ellipsoid method proves it."""
    candidate = synthesize_piecewise(
        switched_size3, encoding="continuous", max_iterations=30_000
    )
    assert not candidate.feasible
    assert candidate.info["proved_infeasible"]


@pytest.mark.parametrize("solver", ["ellipsoid", "barrier"])
def test_piecewise_engines(benchmark, switched_size3, solver):
    """Engine comparison on the same S-procedure system. On this
    (infeasible) instance both engines grind toward a flat negative
    optimum; the barrier's advantage shows on *feasible* instances
    (tests/test_sdp_barrier.py), while only the ellipsoid can prove
    emptiness."""
    candidate = benchmark.pedantic(
        synthesize_piecewise,
        args=(switched_size3,),
        kwargs={
            "encoding": "continuous",
            "solver": solver,
            "max_iterations": 4_000,
        },
        rounds=1,
        iterations=1,
    )
    assert not candidate.feasible
    assert candidate.info["solver"] == solver
