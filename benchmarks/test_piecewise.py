"""Benchmark harness for the Section VI-B.2 negative result.

Times the piecewise-quadratic LMI synthesis per encoding and pins the
paper's observation: candidates are produced (as tolerance/best-iterate
solutions), yet exact validation of the switching-surface condition
fails — plus the stronger diagnosis our ellipsoid method adds, a proof
that the case-study LMI systems are infeasible outright.

The headline pin is the tensorized-pipeline speedup: the hybrid solver
(compiled separation oracle + warm-started barrier polish) must run the
quick-config size-3 synthesis at least 5x faster than the seed
revision's per-block ellipsoid loop, per encoding, with the validation
verdicts unchanged. ``REPRO_PERF_SOFT=1`` (shared/noisy CI runners)
relaxes the 5x pin to a warning but still hard-fails below 2.5x — a
regression of more than 2x from the pinned baseline. Measured wall
times and phase breakdowns land in the ``piecewise`` section of
``BENCH_experiments.json`` (schema ``repro-bench/2``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import warnings

import pytest

from repro.engine import case_by_name
from repro.lyapunov import ENCODINGS, synthesize_piecewise
from repro.runner import write_section
from repro.validate import validate_piecewise

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_experiments.json"
)

#: Seed-revision synthesis wall times (s) for the quick experiment
#: config — size3, max_iterations=6000 — measured with the per-block
#: Python separation oracle this PR replaced. The 5x pin is against
#: these numbers on the same config.
SEED_SYNTH_S = {"continuous": 9.088, "relaxed": 23.26}
PIN_SPEEDUP = 5.0
#: REPRO_PERF_SOFT floor: >2x regression from the pinned 5x baseline.
SOFT_FLOOR_SPEEDUP = 2.5


@pytest.fixture(scope="module")
def switched_size3():
    case = case_by_name("size3")
    return case.switched_system(case.reference())


def test_hybrid_pipeline_speedup_pin(switched_size3):
    """The tentpole pin: >=5x over the seed per-block oracle, both
    encodings, verdicts preserved, phases recorded in the artifact."""
    soft = bool(os.environ.get("REPRO_PERF_SOFT"))
    sections = {}
    for encoding in ENCODINGS:
        started = time.perf_counter()
        candidate = synthesize_piecewise(
            switched_size3, encoding=encoding, max_iterations=6_000
        )
        measured = time.perf_counter() - started
        speedup = SEED_SYNTH_S[encoding] / measured
        sections[encoding] = {
            "seed_synth_s": SEED_SYNTH_S[encoding],
            "synth_s": measured,
            "speedup": speedup,
            "solver": candidate.info["solver"],
            "iterations": candidate.iterations,
            "polish_iterations": candidate.info["polish_iterations"],
            "phases": dict(candidate.info["phases"]),
            "proved_infeasible": candidate.info["proved_infeasible"],
        }
        # The negative result is solver-independent: candidates still
        # come back as best iterates and still fail exact validation.
        assert not candidate.feasible, encoding
        report = validate_piecewise(
            candidate, switched_size3,
            conditions_scope="surface", max_boxes=4_000,
        )
        assert report.valid is not True, encoding
        sections[encoding]["validation_valid"] = report.valid

        floor = SOFT_FLOOR_SPEEDUP if soft else PIN_SPEEDUP
        if soft and speedup < PIN_SPEEDUP:
            warnings.warn(
                f"piecewise[{encoding}]: speedup {speedup:.1f}x below "
                f"the {PIN_SPEEDUP:g}x pin (soft mode, floor "
                f"{SOFT_FLOOR_SPEEDUP:g}x)",
                stacklevel=1,
            )
        assert speedup >= floor, (
            f"piecewise[{encoding}]: {measured:.2f}s is only "
            f"{speedup:.1f}x over the seed {SEED_SYNTH_S[encoding]:.2f}s "
            f"(floor {floor:g}x)"
        )

    data = write_section(
        BENCH_PATH,
        "piecewise",
        {
            "config": {"case": "size3", "max_iterations": 6_000},
            "pin_speedup": PIN_SPEEDUP,
            "soft_floor_speedup": SOFT_FLOOR_SPEEDUP,
            "soft_mode": soft,
            "encodings": sections,
        },
    )
    assert data["schema"] == "repro-bench/2"
    on_disk = json.loads(BENCH_PATH.read_text())
    assert set(on_disk["piecewise"]["encodings"]) == set(ENCODINGS)
    assert "experiments" in on_disk


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_piecewise_synthesis(benchmark, switched_size3, encoding):
    candidate = benchmark.pedantic(
        synthesize_piecewise,
        args=(switched_size3,),
        kwargs={"encoding": encoding, "max_iterations": 4_000},
        rounds=1,
        iterations=1,
    )
    # A candidate always comes back (best iterate), like the paper's
    # numerical solvers.
    assert candidate.p[0].shape == candidate.p[1].shape


def test_piecewise_surface_validation(benchmark, switched_size3):
    candidate = synthesize_piecewise(
        switched_size3, encoding="continuous", max_iterations=4_000
    )
    report = benchmark.pedantic(
        validate_piecewise,
        args=(candidate, switched_size3),
        kwargs={"conditions_scope": "surface", "max_boxes": 4_000},
        rounds=1,
        iterations=1,
    )
    # The paper's result: the surface condition always fails validation.
    assert report.valid is False
    assert any(
        name.startswith("surface-nonincrease")
        for name in report.failed_conditions
    )


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_shape_validation_always_fails(switched_size3, encoding):
    """Both encodings, same outcome — matching the paper verbatim.

    The continuous encoding uses the barrier engine (fast, nontrivial
    best iterate); the relaxed one — whose 111-dimensional barrier
    centering is slow — uses a moderate ellipsoid budget, which also
    yields a nontrivial iterate. A near-zero candidate would make the
    surface difference vanish identically (trivially 'valid' but
    meaningless), so nontriviality is asserted first."""
    import numpy as np

    if encoding == "continuous":
        candidate = synthesize_piecewise(
            switched_size3, encoding=encoding, solver="barrier"
        )
    else:
        candidate = synthesize_piecewise(
            switched_size3, encoding=encoding, max_iterations=8_000
        )
    assert np.abs(candidate.p[0]).max() > 1e-6  # nontrivial candidate
    report = validate_piecewise(
        candidate, switched_size3, conditions_scope="surface", max_boxes=4_000
    )
    assert report.valid is not True


def test_shape_lmi_system_is_provably_infeasible(switched_size3):
    """Beyond the paper: with the nominal reference both modes own a
    locally stable equilibrium, so no global piecewise-quadratic
    certificate exists — the ellipsoid method proves it (and the hybrid
    pipeline preserves the proof: polish never runs on a proved-empty
    system)."""
    candidate = synthesize_piecewise(
        switched_size3, encoding="continuous", max_iterations=30_000
    )
    assert not candidate.feasible
    assert candidate.info["proved_infeasible"]


@pytest.mark.parametrize("solver", ["hybrid", "ellipsoid", "barrier"])
def test_piecewise_engines(benchmark, switched_size3, solver):
    """Engine comparison on the same S-procedure system. On this
    (infeasible) instance the certifying engines grind toward a flat
    negative optimum; the barrier's advantage shows on *feasible*
    instances (tests/test_sdp_barrier.py), while only the ellipsoid
    oracle (alone or as the hybrid burn-in) can prove emptiness."""
    candidate = benchmark.pedantic(
        synthesize_piecewise,
        args=(switched_size3,),
        kwargs={
            "encoding": "continuous",
            "solver": solver,
            "max_iterations": 4_000,
        },
        rounds=1,
        iterations=1,
    )
    assert not candidate.feasible
    assert candidate.info["solver"] == solver
