"""Ablation: exact definiteness-check algorithms (DESIGN.md section 6).

Compares the three exact positive-definiteness procedures — Sylvester
minors via Bareiss, fraction-free Gauss pivots, and LDL^T pivots — on
Lyapunov matrices of growing size and coefficient complexity. The
library default (Sylvester for reporting, Gauss under the hood of the
fastest validators) rests on these numbers.
"""

from __future__ import annotations

import pytest

from repro.engine import case_by_name
from repro.exact import (
    gauss_positive_definite,
    ldl_positive_definite,
    sylvester_positive_definite,
)
from repro.lyapunov import synthesize

CHECKS = {
    "sylvester": sylvester_positive_definite,
    "gauss": gauss_positive_definite,
    "ldl": ldl_positive_definite,
}


@pytest.fixture(scope="module")
def exact_matrices():
    out = {}
    for case_name in ("size3", "size5", "size10"):
        a = case_by_name(case_name).mode_matrix(0)
        out[case_name] = synthesize("eq-num", a).exact_p(10)
    return out


@pytest.mark.parametrize("check_name", sorted(CHECKS))
@pytest.mark.parametrize("case_name", ["size3", "size5", "size10"])
def test_definiteness_check(benchmark, exact_matrices, check_name, case_name):
    matrix = exact_matrices[case_name]
    verdict = benchmark(CHECKS[check_name], matrix)
    assert verdict is True


@pytest.mark.parametrize("sigfigs", [4, 10, None])
def test_coefficient_complexity(benchmark, sigfigs):
    """Rounding precision controls rational-arithmetic cost: fewer
    significant figures means smaller denominators and faster checks;
    ``None`` (raw binary floats) is the worst case."""
    a = case_by_name("size10").mode_matrix(0)
    candidate = synthesize("eq-num", a)
    matrix = candidate.exact_p(sigfigs)
    verdict = benchmark(gauss_positive_definite, matrix)
    assert verdict in (True, False)


def test_shape_gauss_not_slower_than_sylvester(exact_matrices):
    """Sylvester now streams all leading minors from a single Bareiss
    pass (it used to recompute each from scratch — n determinants);
    the Gauss elimination check must stay in the same league."""
    import time

    matrix = exact_matrices["size10"]
    start = time.perf_counter()
    gauss_positive_definite(matrix)
    gauss = time.perf_counter() - start
    start = time.perf_counter()
    sylvester_positive_definite(matrix)
    sylvester = time.perf_counter() - start
    assert gauss <= sylvester * 1.5
