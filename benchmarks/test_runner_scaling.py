"""Micro-benchmark: runner scaling and the single-pass Sylvester ablation.

Two perf claims are pinned here and tracked across PRs via the
``BENCH_experiments.json`` artifact (written at the repo root by this
module and by ``python -m repro.experiments``):

1. the process-pool runner is not slower than serial execution beyond
   noise, and genuinely overlaps waiting tasks (asserted with
   sleep-bound tasks so the check holds even on single-core CI);
2. ``sylvester_positive_definite`` computes all leading principal
   minors in ONE Bareiss elimination pass — measurably faster than the
   seed implementation's per-minor determinants (Θ(n³) vs Θ(n⁴)).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import random
import time
from fractions import Fraction

from repro.exact import (
    RationalMatrix,
    bareiss_determinant,
    sylvester_positive_definite,
)
from repro.experiments import MethodKey, run_table1
from repro.runner import Task, TimingCollector, run_tasks, write_bench

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_experiments.json"
)
QUICK_METHODS = [MethodKey("eq-num"), MethodKey("lmi", "shift")]


class WaitTask(Task):
    """A task dominated by blocked time (deadline waits, solver polls):
    the workload that motivates the pool even on one core."""

    def __init__(self, seconds):
        self.seconds = seconds

    def key(self):
        return {"case": f"wait-{self.seconds}"}

    def run(self):
        time.sleep(self.seconds)
        return self.seconds


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_parallel_not_slower_than_serial():
    """8 x 0.15 s of blocked time: serial pays ~1.2 s, two workers about
    half; spawn/pickle overhead must stay well inside that margin."""
    tasks = [WaitTask(0.15) for _ in range(8)]
    serial_results, serial_s = _timed(lambda: run_tasks(tasks, jobs=1))
    parallel_results, parallel_s = _timed(lambda: run_tasks(tasks, jobs=2))
    assert parallel_results == serial_results
    assert parallel_s <= serial_s * 0.75 + 0.2


def test_quick_grid_scaling_writes_bench():
    """The real quick Table I grid at --jobs 1 vs --jobs 2: identical
    records (modulo measured wall times), wall-clock not slower beyond
    noise, per-task timings recorded into BENCH_experiments.json."""
    kwargs = dict(sizes=(3,), integer_sizes=(3,), methods=QUICK_METHODS)
    serial_timing = TimingCollector()
    (serial_records, _), serial_s = _timed(
        lambda: run_table1(jobs=1, timing=serial_timing, **kwargs)
    )
    parallel_timing = TimingCollector()
    (parallel_records, _), parallel_s = _timed(
        lambda: run_table1(jobs=2, timing=parallel_timing, **kwargs)
    )

    def normalize(record):
        return dataclasses.replace(
            record, synth_time=0.0, validation_time=0.0
        )

    assert [normalize(r) for r in serial_records] == [
        normalize(r) for r in parallel_records
    ]
    # Generous noise bound: the quick grid is sub-second, and on a
    # single-core box two workers only add overhead — they must not
    # add much. Multi-core machines land well under 1x.
    assert parallel_s <= serial_s * 3.0 + 1.0

    write_bench(
        BENCH_PATH, "bench-table1-serial", serial_timing,
        jobs=1, quick=True, total_wall_s=serial_s,
    )
    data = write_bench(
        BENCH_PATH, "bench-table1-parallel", parallel_timing,
        jobs=2, quick=True, total_wall_s=parallel_s,
    )
    assert BENCH_PATH.exists()
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["schema"] == data["schema"] == "repro-bench/2"
    tasks = on_disk["experiments"]["bench-table1-parallel"]["tasks"]
    assert len(tasks) == 8
    assert {(t["case"], t["mode"], t["method"], t["backend"])
            for t in tasks} == {
        (case, mode, key.method, key.backend)
        for case in ("size3i", "size3")
        for mode in (0, 1)
        for key in QUICK_METHODS
    }


def _per_minor_sylvester(matrix):
    """The seed implementation: one Bareiss determinant per minor."""
    for k in range(1, matrix.rows + 1):
        if bareiss_determinant(matrix.leading_principal(k)) <= 0:
            return False
    return True


def test_single_pass_sylvester_beats_per_minor():
    """Ablation: on an 18x18 PD rational matrix the single-pass check
    must clearly beat the per-minor seed implementation."""
    rng = random.Random(20230618)
    n = 18
    g = RationalMatrix(
        [[Fraction(rng.randint(-9, 9)) for _ in range(n)] for _ in range(n)]
    )
    # Denominator-heavy PD matrix, like sigfig-rounded candidates.
    matrix = RationalMatrix(
        [[x / 10_000 for x in row]
         for row in (g @ g.T + RationalMatrix.identity(n).scale(n)).tolist()]
    ).symmetrize()
    new_verdict, new_s = _timed(lambda: sylvester_positive_definite(matrix))
    old_verdict, old_s = _timed(lambda: _per_minor_sylvester(matrix))
    assert new_verdict is True and old_verdict is True
    assert new_s < old_s * 0.5  # measured ~10x; 2x is the safety floor
