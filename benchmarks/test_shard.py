"""Shard-supervisor benchmarks: steal/merge overhead and merge throughput.

The fault-tolerance machinery (per-shard journals, heartbeat leases,
windowed dispatch with work-stealing, deterministic merge) must stay
cheap when nothing goes wrong: a clean 2-shard campaign is pinned at
<= 10% overhead against the same journaled workload on the classic
2-worker pool, and ``merge_journals`` over ~10^4 synthetic lines is
pinned below a generous wall bound. Results land in a ``"shard"``
section of ``BENCH_experiments.json``. ``REPRO_PERF_SOFT=1``
(shared/noisy CI runners) demotes a missed pin to a loose sanity floor.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

from repro.runner import (
    Journal,
    Task,
    journal_digest,
    merge_journals,
    run_sharded,
    run_tasks,
    write_section,
)

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_experiments.json"
)

N_TASKS = 40
TASK_SLEEP_S = 0.025
#: Clean-path pin: sharded wall <= 1.10x the pooled wall (the ISSUE's
#: "steal/merge overhead < 10%" acceptance bar).
OVERHEAD_BOUND = 0.10
#: REPRO_PERF_SOFT floor: 50% — catches only gross regressions.
SOFT_OVERHEAD_BOUND = 0.50

MERGE_LINES = 10_000
MERGE_FILES = 4
MERGE_WALL_BOUND_S = 2.0
SOFT_MERGE_WALL_BOUND_S = 10.0


class SleepTask(Task):
    """A uniform stand-in for a validation task: fixed small sleep, so
    the two schedulers see an identical, perfectly divisible load."""

    def __init__(self, index: int):
        self.index = index

    def key(self):
        return {"case": f"shardbench{self.index}"}

    def run(self):
        time.sleep(TASK_SLEEP_S)
        return self.index


def _tasks():
    return [SleepTask(i) for i in range(N_TASKS)]


def _pooled_wall(tmp: pathlib.Path, run: int) -> float:
    path = tmp / f"pooled{run}.jsonl"
    start = time.perf_counter()
    with Journal(path) as journal:
        results = run_tasks(_tasks(), jobs=2, journal=journal)
    elapsed = time.perf_counter() - start
    assert results == list(range(N_TASKS))
    return elapsed


def _sharded_wall(tmp: pathlib.Path, run: int) -> float:
    path = tmp / f"sharded{run}.jsonl"
    start = time.perf_counter()
    results = run_sharded(
        _tasks(), shards=2, journal=path, heartbeat_s=0.1
    )
    elapsed = time.perf_counter() - start
    assert results == list(range(N_TASKS))
    return elapsed


def test_clean_shard_overhead_and_merge_throughput_write_bench():
    soft = bool(os.environ.get("REPRO_PERF_SOFT"))
    with tempfile.TemporaryDirectory() as tmp_str:
        tmp = pathlib.Path(tmp_str)

        # Warm-up both schedulers (process-pool spawn, imports), then
        # interleave and keep best-of-3 per configuration.
        _pooled_wall(tmp, 99)
        _sharded_wall(tmp, 99)
        pooled, sharded = float("inf"), float("inf")
        for run in range(3):
            pooled = min(pooled, _pooled_wall(tmp, run))
            sharded = min(sharded, _sharded_wall(tmp, run))
        overhead = max(0.0, sharded - pooled) / pooled
        bound = SOFT_OVERHEAD_BOUND if soft else OVERHEAD_BOUND
        assert overhead <= bound, (
            f"sharded overhead {overhead:.1%} exceeds {bound:.0%} "
            f"({sharded:.3f}s vs pooled {pooled:.3f}s)"
        )

        # merge_journals throughput over ~10^4 synthetic lines.
        paths = []
        for shard in range(MERGE_FILES):
            lines = []
            for i in range(shard, MERGE_LINES, MERGE_FILES):
                lines.append(
                    json.dumps(
                        {
                            "v": 1, "fp": f"{i:016x}", "kind": "T",
                            "status": "ok", "attempts": 1, "error": None,
                            "result": [i, i * 2, "payload" * 4],
                        },
                        separators=(",", ":"),
                    ).encode()
                    + b"\n"
                )
            path = tmp / f"merge.shard{shard}"
            path.write_bytes(b"".join(lines))
            paths.append(path)
        out = tmp / "merge.jsonl"
        start = time.perf_counter()
        merged = merge_journals(paths, out=out)
        merge_wall = time.perf_counter() - start
        assert len(merged) == MERGE_LINES
        digest = journal_digest(out)
        merge_bound = SOFT_MERGE_WALL_BOUND_S if soft else MERGE_WALL_BOUND_S
        assert merge_wall < merge_bound, (
            f"merging {MERGE_LINES} lines took {merge_wall:.2f}s "
            f"(bound {merge_bound:.1f}s)"
        )

    data = write_section(
        BENCH_PATH,
        "shard",
        {
            "tasks": N_TASKS,
            "task_sleep_s": TASK_SLEEP_S,
            "pooled_jobs2_wall_s": pooled,
            "sharded_2_wall_s": sharded,
            "relative_overhead": overhead,
            "overhead_bound": OVERHEAD_BOUND,
            "merge_lines": MERGE_LINES,
            "merge_files": MERGE_FILES,
            "merge_wall_s": merge_wall,
            "merge_lines_per_s": MERGE_LINES / max(merge_wall, 1e-9),
            "merge_digest": digest,
        },
    )
    assert data["schema"] == "repro-bench/2"
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["shard"]["merge_lines"] == MERGE_LINES
