"""Shared fixtures for the benchmark harness.

Each ``test_*.py`` here regenerates one of the paper's tables/figures as
a pytest-benchmark run: the benchmark table printed by
``pytest benchmarks/ --benchmark-only`` carries the timing columns, and
the assertions in each test pin the qualitative *shape* the paper
reports (who wins, what fails, where timeouts appear).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import case_by_name


@pytest.fixture(scope="session")
def cases():
    """The benchmark cases used across the harness (small + medium)."""
    return {name: case_by_name(name) for name in ("size3i", "size3", "size5", "size10")}


@pytest.fixture(scope="session")
def mode0_matrices(cases):
    return {name: case.mode_matrix(0) for name, case in cases.items()}


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)
