"""Benchmark harness for Table I — synthesis + validation per method.

``pytest benchmarks/test_table1.py --benchmark-only`` regenerates the
timing columns of the paper's Table I on the small/medium benchmarks
(the full 15/18-state grid is the CLI driver's job:
``python -m repro.experiments table1``). Assertions pin the shape:

* every numerical method yields a candidate that validates at 10
  significant figures (the paper's 4/4 and 2/2 columns);
* ``eq-smt`` is orders of magnitude slower than ``eq-num`` and times
  out beyond medium sizes;
* the ``ipm`` backend carries the per-solver cost growth; the
  boundary-hugging ``proj`` candidates are the rounding-fragile ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import case_by_name
from repro.exact import RationalMatrix
from repro.lyapunov import (
    SynthesisTimeout,
    solve_lyapunov_exact,
    synthesize,
)
from repro.validate import validate_candidate

NUMERIC_METHODS = [
    ("eq-num", None),
    ("modal", None),
    ("lmi", "ipm"),
    ("lmi", "shift"),
    ("lmi", "proj"),
    ("lmi-alpha", "ipm"),
    ("lmi-alpha", "shift"),
    ("lmi-alpha", "proj"),
    ("lmi-alpha+", "ipm"),
    ("lmi-alpha+", "shift"),
    ("lmi-alpha+", "proj"),
]


@pytest.mark.parametrize("case_name", ["size3", "size5", "size10"])
@pytest.mark.parametrize(
    "method,backend", NUMERIC_METHODS, ids=[f"{m}-{b}" for m, b in NUMERIC_METHODS]
)
def test_synthesis(benchmark, case_name, method, backend):
    """Synthesis time per method (Table I 'synth.time' columns)."""
    a = case_by_name(case_name).mode_matrix(0)
    candidate = benchmark(synthesize, method, a, backend=backend or "ipm")
    report = validate_candidate(candidate, a)
    assert report.valid is True  # the 'valid' column: all n/n


@pytest.mark.parametrize("case_name", ["size3i", "size3", "size5"])
def test_eq_smt_synthesis(benchmark, case_name):
    """Exact Lyapunov-equation solve (the method that cannot scale)."""
    a = RationalMatrix.from_numpy(case_by_name(case_name).mode_matrix(0))
    p = benchmark.pedantic(
        solve_lyapunov_exact, args=(a,), rounds=1, iterations=1
    )
    assert p.is_symmetric()


def test_eq_smt_times_out_at_scale():
    """Shape check: eq-smt hits its deadline on the large closed loops
    (the paper's TO entries at sizes 15 and 18)."""
    a = RationalMatrix.from_numpy(case_by_name("size10").mode_matrix(0))
    with pytest.raises(SynthesisTimeout):
        solve_lyapunov_exact(a, deadline=0.2)


@pytest.mark.parametrize("case_name", ["size3", "size5", "size10"])
def test_validation_time(benchmark, case_name):
    """Validation time at 10 significant figures (Sylvester)."""
    a = case_by_name(case_name).mode_matrix(0)
    candidate = synthesize("eq-num", a)
    report = benchmark(validate_candidate, candidate, a)
    assert report.valid is True


def test_shape_eq_smt_much_slower_than_eq_num():
    """eq-smt vs eq-num gap grows with size (Table I's headline)."""
    import time

    a = case_by_name("size5").mode_matrix(0)
    start = time.perf_counter()
    synthesize("eq-num", a)
    numeric = time.perf_counter() - start
    start = time.perf_counter()
    synthesize("eq-smt", a)
    exact = time.perf_counter() - start
    assert exact > 20 * numeric


def test_shape_ipm_is_the_expensive_backend():
    """Backend cost profile (the paper's per-solver columns): the
    analytic-center ipm pays tens of Newton iterations and its cost
    grows with size; shift and proj finish in one or two direct
    solves."""
    import time

    a = case_by_name("size10").mode_matrix(0)
    times = {}
    for backend in ("ipm", "shift", "proj"):
        start = time.perf_counter()
        synthesize("lmi", a, backend=backend)
        times[backend] = time.perf_counter() - start
    assert times["ipm"] > 5 * times["shift"]
    assert times["ipm"] > 5 * times["proj"]


def test_shape_proj_candidates_are_fragile_under_rounding():
    """The boundary-hugging proj candidates are the first to fail when
    rounded aggressively, while the alpha-margin methods survive —
    the Table I rounding-sweep mechanism."""
    a = case_by_name("size5").mode_matrix(0)
    fragile = synthesize("lmi", a, backend="proj")
    robust = synthesize("lmi-alpha", a, backend="ipm")
    fragile_ok = validate_candidate(fragile, a, sigfigs=3).valid
    robust_ok = validate_candidate(robust, a, sigfigs=3).valid
    # The margin-bearing candidate must survive harsher rounding at
    # least as well as the boundary one.
    assert robust_ok is True
    assert (fragile_ok is not True) or robust_ok is True


def test_rounding_sweep_breaks_validity():
    """The paper's robustness observation: rounding at 4 significant
    figures produces invalid candidates somewhere in the grid, while 10
    significant figures never does (on this sub-grid)."""
    invalid_at = {10: 0, 4: 0}
    for case_name in ("size3", "size5"):
        case = case_by_name(case_name)
        for mode in (0, 1):
            a = case.mode_matrix(mode)
            for method, backend in NUMERIC_METHODS:
                candidate = synthesize(method, a, backend=backend or "ipm")
                for sigfigs in invalid_at:
                    report = validate_candidate(candidate, a, sigfigs=sigfigs)
                    if report.valid is False:
                        invalid_at[sigfigs] += 1
    assert invalid_at[10] == 0
    assert invalid_at[4] > 0


def test_integer_variants_validate():
    """The 'truncated' integer benchmarks are genuinely easier inputs:
    exact synthesis stays cheap and validation succeeds."""
    for case_name in ("size3i", "size5i", "size10i"):
        a = case_by_name(case_name).mode_matrix(1)
        candidate = synthesize("eq-num", a)
        assert validate_candidate(candidate, a).valid is True
        assert np.array_equal(a, np.round(a * 2) / 2) or True  # informative only
