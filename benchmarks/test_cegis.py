"""Benchmark harness for the CEGIS loop (the flipped negative result).

Times counterexample-guided synthesis end to end on the reduced case
studies and records the loop's shape — iterations to a validated
certificate, accumulated cut counts, per-phase wall time — in the
top-level ``cegis`` section of ``BENCH_experiments.json``:

* ``full`` synthesis at the attracting references must validate the
  3-, 5- and 10-state models in **one** round (the matrix encoding is
  exact; refinement has nothing to add);
* ``sampled`` synthesis on size3 must converge through genuine
  refinement (strictly more than one round, a nonzero cut budget) and
  still end validated — the loop earning its keep;
* the nominal size3 run must reproduce the paper's negative result as
  a round-1 infeasibility proof with zero cuts.

Wall-time pins are soft by default (recorded, warned past budget) and
only hard-fail past ``HARD_FACTOR`` times the budget, or at the budget
itself when ``REPRO_PERF_STRICT=1``.
"""

from __future__ import annotations

import os
import pathlib
import time
import warnings

import pytest

from repro.engine import attracting_reference, case_by_name, nominal_reference
from repro.lyapunov import cegis_piecewise

from repro.runner import write_section

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_experiments.json"
)

#: Wall-time budgets (s) per row, generous multiples of the measured
#: times on the development container (size3 full 0.5s, size5 full
#: 1.1s, size10 full 3.6s, size3 sampled 3.6s, size3 nominal 1.6s).
BUDGETS_S = {
    ("size3", "attracting", "full"): 15.0,
    ("size5", "attracting", "full"): 30.0,
    ("size10", "attracting", "full"): 90.0,
    ("size3", "attracting", "sampled"): 60.0,
    ("size3", "nominal", "full"): 30.0,
}
HARD_FACTOR = 4.0

_REFERENCES = {
    "nominal": nominal_reference,
    "attracting": attracting_reference,
}


def _run_row(case_name: str, regime: str, synthesis: str):
    case = case_by_name(case_name)
    system = case.switched_system(_REFERENCES[regime](case.plant))
    start = time.perf_counter()
    outcome = cegis_piecewise(
        system, synthesis=synthesis, max_iterations=60_000
    )
    elapsed = time.perf_counter() - start
    return outcome, elapsed


def _check_budget(row_key, elapsed: float) -> None:
    budget = BUDGETS_S[row_key]
    strict = bool(os.environ.get("REPRO_PERF_STRICT"))
    limit = budget if strict else HARD_FACTOR * budget
    if elapsed > budget:
        warnings.warn(
            f"cegis row {row_key} took {elapsed:.1f}s "
            f"(budget {budget:.0f}s)",
            stacklevel=2,
        )
    assert elapsed <= limit, (
        f"cegis row {row_key}: {elapsed:.1f}s exceeds "
        f"{'strict ' if strict else ''}limit {limit:.0f}s"
    )


def _payload(outcome, elapsed: float) -> dict:
    return {
        "status": outcome.status,
        "rounds": len(outcome.rounds),
        "cuts": outcome.cut_count,
        "synth_s": round(sum(r.synth_time for r in outcome.rounds), 4),
        "verify_s": round(sum(r.verify_time for r in outcome.rounds), 4),
        "wall_s": round(elapsed, 4),
        "digest": outcome.digest(),
    }


def test_cegis_bench_section():
    """Run every row, pin the loop shapes, write the ``cegis`` section."""
    section = {"schema": "repro-bench/2", "rows": {}}
    for case_name, regime, synthesis in BUDGETS_S:
        outcome, elapsed = _run_row(case_name, regime, synthesis)
        _check_budget((case_name, regime, synthesis), elapsed)
        section["rows"][f"{case_name}/{regime}/{synthesis}"] = _payload(
            outcome, elapsed
        )
        if regime == "nominal":
            # The paper's negative result: proved infeasible before
            # any refinement could happen.
            assert outcome.status == "infeasible"
            assert len(outcome.rounds) == 1 and outcome.cut_count == 0
        elif synthesis == "full":
            # Exact matrix encoding: nothing left for cuts to do.
            assert outcome.status == "validated"
            assert len(outcome.rounds) == 1 and outcome.cut_count == 0
        else:
            # Sampled synthesis converges through genuine refinement.
            assert outcome.status == "validated"
            assert len(outcome.rounds) > 1 and outcome.cut_count > 0
    write_section(BENCH_PATH, "cegis", section)


def test_cegis_digest_stability():
    """The provenance digest is a pure function of the loop structure:
    two fresh size3 campaigns must agree bit for bit."""
    first, _ = _run_row("size3", "attracting", "full")
    second, _ = _run_row("size3", "attracting", "full")
    assert first.digest() == second.digest()
