"""Benchmark: batched ICP engine vs the scalar branch-and-prune.

Pins the tentpole perf claims of the vectorized refuter and records the
measured throughputs into the ``icp`` section of
``BENCH_experiments.json`` (schema ``repro-bench/2``):

1. raw classification throughput — one ``classify_boxes`` pass over a
   definiteness-shaped box population must clear 5x the scalar
   per-box ``_classify`` loop (measured ~200x; 5x is the safety
   floor);
2. end-to-end refutation — a budget-limited near-singular definiteness
   check, the workload where the frontier actually grows to thousands
   of boxes, must clear 3x wall-clock (measured ~8x at a 5k-box
   budget, ~23x at 100k).

Correctness is asserted before any timing: the batched verdicts (and
explored-box counts for the end-to-end run) must equal the scalar
engine's bit-for-bit, so a fast-but-wrong engine can never win the
timing. ``REPRO_PERF_SOFT=1`` (shared/noisy CI runners) demotes a
missed pin to a warning but still hard-fails below half the pin.

Small workloads are *not* pinned: on searches that explore only tens
of boxes the chunk bookkeeping makes the batched engine slower than
the scalar DFS — that regime is documented (EXPERIMENTS.md) rather
than pinned, and ``backend="scalar"`` remains a supported escape.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import warnings
from fractions import Fraction

import numpy as np

from repro.exact import RationalMatrix
from repro.runner import write_section
from repro.smt import (
    Box,
    Interval,
    IcpSolver,
    Var,
    check_positive_definite_icp,
    classify_boxes,
    quadratic_form_term,
)
from repro.smt.icp import prepare_atoms

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_experiments.json"
)

#: Classification-throughput pin (measured ~200x on one core).
PIN_CLASSIFY = 5.0
#: End-to-end refutation pin (measured ~8x at the 5k budget).
PIN_END_TO_END = 3.0

POPULATION = 4096
DIMENSION = 6
REFUTE_BUDGET = 5_000


def _best_of(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _soft_pin(name, speedup, pin, soft):
    """Enforce ``speedup >= pin`` (soft mode: warn, floor at pin/2)."""
    floor = pin / 2 if soft else pin
    if soft and speedup < pin:
        warnings.warn(
            f"icp[{name}]: speedup {speedup:.1f}x below the {pin:g}x pin "
            f"(soft mode, floor {floor:g}x)",
            stacklevel=2,
        )
    assert speedup >= floor, (
        f"icp[{name}]: {speedup:.1f}x is below the floor {floor:g}x"
    )


def _definiteness_population():
    """A quadratic-form atom and a deterministic box population shaped
    like the sub-boxes the definiteness face checks actually explore."""
    variables = [Var(f"x{i}") for i in range(DIMENSION)]
    rows = [
        [
            (i * 31 + j * 17) % 7 - 3 + (5 * DIMENSION if i == j else 0)
            for j in range(DIMENSION)
        ]
        for i in range(DIMENSION)
    ]
    form = quadratic_form_term(RationalMatrix(rows).symmetrize(), variables)
    atoms = [form <= 0]
    rng = np.random.default_rng(0)
    boxes = []
    for _ in range(POPULATION):
        centers = rng.uniform(-1.0, 1.0, size=DIMENSION)
        widths = rng.uniform(0.01, 0.5, size=DIMENSION)
        boxes.append(
            Box(
                {
                    v.name: Interval(float(c - w), float(c + w))
                    for v, c, w in zip(variables, centers, widths)
                }
            )
        )
    return atoms, boxes


def _near_singular_matrix(n=4, margin=Fraction(1, 100)):
    """A PD matrix shifted to within ``margin`` of singular: the ICP
    face check must refine deeply, growing the frontier to thousands
    of boxes — the regime the batched engine exists for."""
    rows = [
        [(i * 31 + j * 17) % 7 - 3 + (3 * n if i == j else 0) for j in range(n)]
        for i in range(n)
    ]
    m = RationalMatrix(rows).symmetrize()
    eigs = np.linalg.eigvalsh(m.to_numpy())
    shift = Fraction(f"{eigs.min():.6g}") - margin
    return (m - RationalMatrix.identity(n).scale(shift)).symmetrize()


def test_icp_backends_throughput_writes_bench():
    soft = bool(os.environ.get("REPRO_PERF_SOFT"))
    atoms, boxes = _definiteness_population()
    prepared = prepare_atoms(atoms)
    scalar_solver = IcpSolver(backend="scalar")

    # Warm-up pass doubles as the differential check: every batched
    # verdict must equal the scalar classification.
    batched_verdicts = classify_boxes(atoms, boxes)
    for box, verdict in zip(boxes, batched_verdicts):
        kind, _ = scalar_solver._classify(prepared, box)
        assert verdict == kind

    scalar_s = _best_of(
        lambda: [scalar_solver._classify(prepared, b) for b in boxes]
    )
    batched_s = _best_of(lambda: classify_boxes(atoms, boxes))
    classify_speedup = scalar_s / batched_s
    _soft_pin("classify", classify_speedup, PIN_CLASSIFY, soft)

    # End-to-end: budget-limited near-singular refutation, identical
    # verdict and explored-box count required before timing counts.
    matrix = _near_singular_matrix()
    scalar_outcome = check_positive_definite_icp(
        matrix, max_boxes=REFUTE_BUDGET, backend="scalar"
    )
    batched_outcome = check_positive_definite_icp(
        matrix, max_boxes=REFUTE_BUDGET, backend="batched"
    )
    assert batched_outcome.verdict == scalar_outcome.verdict
    assert batched_outcome.boxes_explored == scalar_outcome.boxes_explored
    e2e_scalar_s = _best_of(
        lambda: check_positive_definite_icp(
            matrix, max_boxes=REFUTE_BUDGET, backend="scalar"
        ),
        reps=1,
    )
    e2e_batched_s = _best_of(
        lambda: check_positive_definite_icp(
            matrix, max_boxes=REFUTE_BUDGET, backend="batched"
        ),
        reps=2,
    )
    e2e_speedup = e2e_scalar_s / e2e_batched_s
    _soft_pin("end-to-end", e2e_speedup, PIN_END_TO_END, soft)

    data = write_section(
        BENCH_PATH,
        "icp",
        {
            "classification": {
                "boxes": POPULATION,
                "dimension": DIMENSION,
                "scalar_s": scalar_s,
                "batched_s": batched_s,
                "scalar_boxes_per_s": POPULATION / scalar_s,
                "batched_boxes_per_s": POPULATION / batched_s,
                "speedup": classify_speedup,
            },
            "end_to_end": {
                "workload": "near-singular 4x4 definiteness refutation",
                "max_boxes": REFUTE_BUDGET,
                "boxes_explored": scalar_outcome.boxes_explored,
                "verdict": scalar_outcome.verdict,
                "scalar_s": e2e_scalar_s,
                "batched_s": e2e_batched_s,
                "speedup": e2e_speedup,
            },
            "pin_classify_speedup": PIN_CLASSIFY,
            "pin_end_to_end_speedup": PIN_END_TO_END,
            "soft_mode": soft,
        },
    )
    assert data["schema"] == "repro-bench/2"
    on_disk = json.loads(BENCH_PATH.read_text())
    assert on_disk["icp"]["classification"]["speedup"] >= 1.0
    assert "experiments" in on_disk


def test_shape_small_searches_prefer_scalar():
    """The documented trade-off: on a tiny search (a handful of boxes)
    the scalar DFS is competitive or faster — which is why
    ``backend="scalar"`` stays a supported escape hatch and why the
    pins above only cover large-frontier workloads."""
    x, y = Var("x"), Var("y")
    atoms = [(x * x + y * y - 1) <= 0, (Fraction(1, 2) - x) <= 0]
    box = Box.cube(["x", "y"], -2.0, 2.0)
    scalar = IcpSolver(backend="scalar").check(atoms, box)
    batched = IcpSolver(backend="batched").check(atoms, box)
    assert batched.status is scalar.status
    assert batched.boxes_explored == scalar.boxes_explored
    assert scalar.boxes_explored < 100
