"""Ablation: DNF expansion vs lazy DPLL(T) (DESIGN.md section 6).

The library ships two complete SMT engines over the same theory layer.
On the small validation formulas the paper's pipeline generates they
are interchangeable; on boolean-rich formulas the DNF engine pays the
exponential expansion this file measures.
"""

from __future__ import annotations

import time

import pytest

from repro.smt import And, Or, SmtSolver, Var
from repro.smt.dpll import DpllSolver


def chain_formula(k: int, satisfiable: bool = True):
    """(a1 or b1) and ... and (ak or bk) [and contradiction]."""
    conjuncts = []
    for i in range(k):
        a, b = Var(f"a{i}"), Var(f"b{i}")
        conjuncts.append(Or((a <= 0, b <= 0)))
    if not satisfiable:
        x = Var("a0")
        conjuncts.append(x > 1)
        conjuncts.append(x < -1)
    return And(tuple(conjuncts))


@pytest.mark.parametrize("engine", ["dnf", "dpll"])
@pytest.mark.parametrize("width", [4, 8])
def test_engine_on_chains(benchmark, engine, width):
    formula = chain_formula(width)
    solver = SmtSolver() if engine == "dnf" else DpllSolver()
    result = benchmark(solver.check, formula)
    assert result.is_sat


def test_shape_dpll_scales_past_dnf():
    """At width 12 the DNF engine enumerates 4096 disjuncts; DPLL needs
    one theory call. The gap must be at least an order of magnitude."""
    formula = chain_formula(12)
    start = time.perf_counter()
    assert SmtSolver().check(formula).is_sat
    dnf_time = time.perf_counter() - start
    start = time.perf_counter()
    assert DpllSolver().check(formula).is_sat
    dpll_time = time.perf_counter() - start
    assert dpll_time < dnf_time

    result = DpllSolver().check(formula)
    assert result.conjuncts_checked <= 4  # theory consultations, not 2^12


def test_shape_same_verdicts_on_unsat():
    formula = chain_formula(6, satisfiable=False)
    assert SmtSolver().check(formula).is_unsat
    assert DpllSolver().check(formula).is_unsat
