"""Ablation: ICP solver knobs (DESIGN.md section 6).

Measures the effect of (a) the HC4-style linear contraction passes and
(b) the "+ det" encoding on the definiteness workloads the validators
run. Both default choices (2 contraction passes; strict encoding with
the det variant available) come from these comparisons.
"""

from __future__ import annotations

import pytest

from repro.engine import case_by_name
from repro.lyapunov import synthesize
from repro.smt import (
    Box,
    IcpSolver,
    IcpStatus,
    Var,
    check_positive_definite_icp,
)


@pytest.fixture(scope="module")
def pd_matrix():
    """A fixed diagonally dominant integer matrix: small enough (and
    deterministic enough) for the search-based route to *prove*
    definiteness quickly; larger/rounded instances exceed laptop
    budgets — the scaling test below demonstrates exactly that."""
    from repro.exact import RationalMatrix

    return RationalMatrix([[5, 1, 0], [1, 4, 1], [0, 1, 6]])


@pytest.mark.parametrize("passes", [0, 1, 2, 4])
def test_contraction_passes(benchmark, passes):
    """Contraction cost/benefit on a mixed linear/quadratic query."""
    x, y, z = Var("x"), Var("y"), Var("z")
    atoms = [
        (x + 2 * y - z - 1) <= 0,
        (z - x) <= 0,
        (x * x + y * y - 4) <= 0,
        (1 - x) <= 0,
    ]
    box = Box.cube(["x", "y", "z"], -10.0, 10.0)

    def run():
        solver = IcpSolver(contraction_passes=passes, max_boxes=50_000)
        return solver.check(atoms, box)

    result = benchmark(run)
    assert result.status in (IcpStatus.SAT, IcpStatus.DELTA_SAT)


@pytest.mark.parametrize("plus_det", [False, True], ids=["strict", "plus-det"])
def test_encoding_on_definite_input(benchmark, pd_matrix, plus_det):
    outcome = benchmark.pedantic(
        check_positive_definite_icp,
        args=(pd_matrix,),
        kwargs={"plus_det": plus_det, "max_boxes": 300_000},
        rounds=1,
        iterations=1,
    )
    assert outcome.verdict is True


def test_shape_contraction_reduces_boxes():
    """With contraction off, pure branch-and-prune explores more boxes
    on a linear-dominated UNSAT query."""
    x, y = Var("x"), Var("y")
    atoms = [(5 - x) <= 0, (x + y) <= 0, (3 - y) <= 0]  # x>=5, y>=3, x+y<=0
    box = Box.cube(["x", "y"], -100.0, 100.0)
    off = IcpSolver(contraction_passes=0, max_boxes=100_000).check(atoms, box)
    on = IcpSolver(contraction_passes=2, max_boxes=100_000).check(atoms, box)
    assert off.status is IcpStatus.UNSAT
    assert on.status is IcpStatus.UNSAT
    assert on.boxes_explored <= off.boxes_explored


def test_shape_splits_grow_with_dimension():
    """Face checks on the sphere get exponentially harder with size —
    why the ICP validator is capped at small benchmarks in Figure 3.
    The size-5 run is budget-limited: exceeding the size-3 budget (or
    exhausting it into an undecided verdict) is itself the scaling
    signal."""
    a3 = case_by_name("size3").mode_matrix(0)
    m3 = synthesize("eq-num", a3).exact_p(6)
    outcome3 = check_positive_definite_icp(m3, max_boxes=60_000)
    assert outcome3.verdict is True
    a5 = case_by_name("size5").mode_matrix(0)
    m5 = synthesize("eq-num", a5).exact_p(6)
    budget = max(2 * outcome3.boxes_explored, 5_000)
    outcome5 = check_positive_definite_icp(m5, max_boxes=budget)
    assert outcome5.verdict is None or (
        outcome5.boxes_explored > outcome3.boxes_explored
    )
