"""Ablation: SDP backend trade-offs (DESIGN.md section 6).

The three Lyapunov-LMI backends deliberately differ:

* ``shift``  — one Bartels--Stewart solve: fastest, boundary-hugging;
* ``ipm``    — analytic center: slower, best-conditioned candidates;
* ``proj``   — alternating projections: slowest (the SMCP role).

This file measures those trade-offs and the effect of the ``nu`` floor
(LMIalpha+) on candidate conditioning, which feeds directly into the
robust-region geometry of Table II.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import case_by_name
from repro.sdp import LyapunovLmiProblem, solve_lyapunov_lmi
from repro.lyapunov import default_alpha


@pytest.mark.parametrize("backend", ["ipm", "shift", "proj"])
@pytest.mark.parametrize("case_name", ["size5", "size10"])
def test_backend_speed(benchmark, case_name, backend):
    a = case_by_name(case_name).mode_matrix(0)
    solution = benchmark(solve_lyapunov_lmi, a, backend=backend)
    assert LyapunovLmiProblem(a).is_strictly_feasible(solution.p, slack=1e-10)


@pytest.mark.parametrize("backend", ["ipm", "shift", "proj"])
def test_backend_speed_large(benchmark, backend):
    """The full 21-dimensional closed loop."""
    a = case_by_name("size18").mode_matrix(0)
    solution = benchmark.pedantic(
        solve_lyapunov_lmi, args=(a,), kwargs={"backend": backend},
        rounds=1, iterations=1,
    )
    assert LyapunovLmiProblem(a).is_strictly_feasible(solution.p, slack=1e-8)


@pytest.mark.parametrize("nu", [None, 0.1, 1.0, 10.0])
def test_nu_floor_conditioning(benchmark, nu):
    """LMIalpha+'s nu floor lifts the candidate's smallest eigenvalue —
    the paper's stated motivation ('force greater eigenvalues')."""
    a = case_by_name("size10").mode_matrix(0)
    alpha = default_alpha(a)
    solution = benchmark(
        solve_lyapunov_lmi, a, alpha=alpha, nu=nu, backend="shift"
    )
    floor = float(np.linalg.eigvalsh(solution.p).min())
    if nu is not None:
        assert floor >= nu


def test_shape_ipm_better_conditioned_than_shift():
    """Analytic-center candidates sit deeper in the cone: their margin
    to the constraint boundary beats the direct solver's."""
    a = case_by_name("size10").mode_matrix(0)
    problem = LyapunovLmiProblem(a)
    ipm_margin = problem.constraint_margins(
        solve_lyapunov_lmi(a, backend="ipm").p
    )[0]
    shift_margin = problem.constraint_margins(
        solve_lyapunov_lmi(a, backend="shift").p
    )[0]
    assert ipm_margin > shift_margin


def test_shape_proj_needs_most_iterations():
    a = case_by_name("size10").mode_matrix(0)
    iterations = {
        backend: solve_lyapunov_lmi(a, backend=backend).iterations
        for backend in ("ipm", "shift", "proj")
    }
    assert iterations["shift"] == 1
    assert iterations["proj"] >= iterations["shift"]
