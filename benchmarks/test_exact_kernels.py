"""Micro-benchmark: exact kernel backends against the Fraction oracle.

Pins the tentpole perf claims of the kernel layer and records the
measured per-backend wall times into the ``kernels`` section of
``BENCH_experiments.json`` (schema ``repro-bench/2``):

1. at n=10 the int-Bareiss and multimodular determinant paths are not
   slower than the Fraction oracle;
2. at n=18 (the paper's largest closed-loop dimension before the
   integer ladder tops out) both are at least 5x faster — measured
   headroom is ~2x beyond the pin (int ~9.6x, modular ~10x);
3. when gmpy2 is installed, its mpz Bareiss determinant is at least 3x
   faster than the Python-int path at n=18 and n=21 (the big-int
   arithmetic dominates there); without gmpy2 those columns are
   simply absent from the artifact and the pin is skipped —
   ``resolve_backend("gmpy2")`` degrades to ``"int"`` silently.

``REPRO_PERF_SOFT=1`` (shared/noisy CI runners) demotes a missed
gmpy2 pin to a warning but still hard-fails below 1.5x.

Matrices follow the shape the validation pipeline actually feeds the
kernels: a Lie derivative ``-(A^T P + P A)`` of a float-exact stable
``A`` (binary denominators ~2^52) against a 10-significant-figure
rounded PD candidate ``P`` — common denominators of ~144 bits and
Hadamard bounds of ~2700 bits at n=18.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import warnings
from fractions import Fraction

import numpy as np

from repro.exact import (
    RationalMatrix,
    bareiss_determinant,
    gmpy2_available,
    kernel_cache_info,
    leading_principal_minors,
)
from repro.runner import write_kernels_bench

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_experiments.json"
)
SIZES = (3, 5, 10, 15, 18, 21)
BACKENDS = ("fraction", "int", "modular") + (
    ("gmpy2",) if gmpy2_available() else ()
)
#: gmpy2-vs-int determinant pin at n >= 18 (only when gmpy2 is there).
PIN_GMPY2 = 3.0


def lie_shaped(n, seed):
    """-(A^T P + P A) for float-exact stable A and 10-sigfig PD P."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    a -= (np.linalg.eigvals(a).real.max() + 0.5) * np.eye(n)
    a_exact = RationalMatrix.from_numpy(a)
    g = RationalMatrix(
        [[Fraction(f"{value:.10g}") for value in row]
         for row in rng.normal(size=(n, n)).tolist()]
    )
    p = (g @ g.T + RationalMatrix.identity(n).scale(n)).symmetrize()
    return (a_exact.T @ p + p @ a_exact).scale(-1).symmetrize()


def _best_of(fn, reps=3):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_backends_scaling_writes_bench():
    sizes = {}
    for n in SIZES:
        matrix = lie_shaped(n, seed=7)
        timings = {}
        oracle_det = bareiss_determinant(matrix, backend="fraction")
        oracle_minors = leading_principal_minors(matrix, backend="fraction")
        for backend in BACKENDS:
            # Warm-up pass: normalizes the matrix into the kernel cache,
            # generates CRT primes, and checks agreement with the oracle
            # so a fast-but-wrong backend can never win the timing.
            assert bareiss_determinant(matrix, backend=backend) == oracle_det
            assert (
                leading_principal_minors(matrix, backend=backend)
                == oracle_minors
            )
            timings[f"{backend}_det_s"] = _best_of(
                lambda b=backend: bareiss_determinant(matrix, backend=b)
            )
            timings[f"{backend}_minors_s"] = _best_of(
                lambda b=backend: leading_principal_minors(matrix, backend=b)
            )
        sizes[str(n)] = timings

    # Pin 1: crossover — the fast paths are already not-slower at n=10
    # (10% slack absorbs timer noise on a loaded CI box).
    at10 = sizes["10"]
    assert at10["int_det_s"] <= at10["fraction_det_s"] * 1.10
    assert at10["modular_det_s"] <= at10["fraction_det_s"] * 1.10

    # Pin 2: at n=18 both fast determinant paths clear 5x (measured
    # ~9.6x int / ~10x modular; 5x is the safety floor), and the int
    # minor stream clears 5x as well (measured ~9x).
    at18 = sizes["18"]
    assert at18["int_det_s"] * 5 <= at18["fraction_det_s"]
    assert at18["modular_det_s"] * 5 <= at18["fraction_det_s"]
    assert at18["int_minors_s"] * 5 <= at18["fraction_minors_s"]

    # Pin 3 (optional dependency): mpz arithmetic beats Python ints by
    # 3x on the big-bit-size determinants. Skipped entirely when gmpy2
    # is absent — the backend then resolves to "int" and there is
    # nothing to time.
    if gmpy2_available():
        soft = bool(os.environ.get("REPRO_PERF_SOFT"))
        for n in ("18", "21"):
            speedup = sizes[n]["int_det_s"] / sizes[n]["gmpy2_det_s"]
            floor = PIN_GMPY2 / 2 if soft else PIN_GMPY2
            if soft and speedup < PIN_GMPY2:
                warnings.warn(
                    f"kernels[gmpy2 n={n}]: {speedup:.1f}x below the "
                    f"{PIN_GMPY2:g}x pin (soft mode, floor {floor:g}x)",
                    stacklevel=1,
                )
            assert speedup >= floor, (
                f"kernels[gmpy2 n={n}]: det only {speedup:.1f}x over "
                f"int (floor {floor:g}x)"
            )

    data = write_kernels_bench(
        BENCH_PATH,
        {
            "sizes": sizes,
            "cache": kernel_cache_info(),
            "gmpy2_available": gmpy2_available(),
        },
    )
    assert data["schema"] == "repro-bench/2"
    on_disk = json.loads(BENCH_PATH.read_text())
    assert set(on_disk["kernels"]["sizes"]) == {str(n) for n in SIZES}
    assert "experiments" in on_disk
